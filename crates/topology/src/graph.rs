//! The network model: an undirected multigraph-free graph of routers and
//! links with geometric embedding and (possibly asymmetric) link costs.
//!
//! This mirrors the paper's §II-A model: the network is an undirected graph;
//! the link from `vi` to `vj` has a cost `c(i,j)` which may differ from
//! `c(j,i)`; every node knows the full topology and the coordinates of all
//! nodes. The evaluation (§IV-A) uses hop-count routing, i.e. all costs 1.

use crate::geometry::{Point, Segment};
use std::fmt;

/// Maximum number of nodes or links in one topology (2²⁴).
///
/// Ids are assigned densely from zero, and several structures index by id:
/// the CSR adjacency keeps `u32` offsets (entry count is `2 · links`, safe
/// below 2²⁵), and per-link bitsets stay addressable. The paper's packet
/// headers encode ids in 16 bits (§III-B) — the Table II topologies sit
/// far inside that — but the scale sweep (`BENCH_scale.json`) drives the
/// substrate to 100k+ nodes, so construction accepts the full 24-bit
/// space; header-byte accounting remains exact for topologies within the
/// 16-bit wire format.
pub const MAX_IDS: usize = 1 << 24;

/// Identifier of a node (router). Indexes into [`Topology`] storage.
///
/// The paper's packet headers encode node ids in 16 bits; the substrate
/// itself accepts up to [`MAX_IDS`] nodes for scale experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node in the topology's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an undirected link. Indexes into [`Topology`] storage.
///
/// The paper's packet headers encode link ids in 16 bits (§III-B); the
/// substrate itself accepts up to [`MAX_IDS`] links for scale experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The index of this link in the topology's link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected link with per-direction costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    a: NodeId,
    b: NodeId,
    /// Cost in the a→b direction.
    cost_ab: u32,
    /// Cost in the b→a direction (may differ; the model allows asymmetry).
    cost_ba: u32,
}

impl Link {
    /// The endpoint with the smaller id at construction time.
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// The other endpoint.
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Both endpoints as a pair `(a, b)`.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Cost of traversing the link starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    // Documented contract panic: callers obtain `from` from this link's own
    // endpoints; a mismatch is a caller bug, not a recoverable condition.
    #[allow(clippy::panic)]
    pub fn cost_from(&self, from: NodeId) -> u32 {
        if from == self.a {
            self.cost_ab
        } else if from == self.b {
            self.cost_ba
        } else {
            panic!("{from} is not an endpoint of this link");
        }
    }

    /// The endpoint opposite to `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    // Documented contract panic: see `cost_from`.
    #[allow(clippy::panic)]
    pub fn other_end(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of this link");
        }
    }

    /// Returns true when `n` is one of the link's endpoints.
    pub fn is_incident_to(&self, n: NodeId) -> bool {
        self.a == n || self.b == n
    }
}

/// Errors produced while building or loading a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link referenced a node id not present in the topology.
    UnknownNode(NodeId),
    /// A self-loop was added; the model is a simple graph.
    SelfLoop(NodeId),
    /// A duplicate link between the same pair of nodes was added.
    DuplicateLink(NodeId, NodeId),
    /// A node coordinate was NaN or infinite.
    BadCoordinate(usize),
    /// A link cost of zero was supplied; costs must be positive.
    ZeroCost(NodeId, NodeId),
    /// Too many nodes or links for the topology id space ([`MAX_IDS`]).
    TooLarge(&'static str),
    /// A topology file could not be parsed.
    Parse(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link between {a} and {b}"),
            TopologyError::BadCoordinate(i) => {
                write!(f, "non-finite coordinate for node index {i}")
            }
            TopologyError::ZeroCost(a, b) => write!(f, "zero cost on link between {a} and {b}"),
            TopologyError::TooLarge(what) => {
                write!(f, "too many {what} for the 24-bit topology id space")
            }
            TopologyError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable network topology: routers with coordinates plus links.
///
/// Build one with [`TopologyBuilder`]:
///
/// ```
/// use rtr_topology::{Topology, Point};
/// # fn main() -> Result<(), rtr_topology::TopologyError> {
/// let mut b = Topology::builder();
/// let v0 = b.add_node(Point::new(0.0, 0.0));
/// let v1 = b.add_node(Point::new(1.0, 0.0));
/// b.add_link(v0, v1, 1)?;
/// let topo = b.build()?;
/// assert_eq!(topo.node_count(), 2);
/// assert_eq!(topo.link_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    links: Vec<Link>,
    /// CSR adjacency: node `n`'s `(neighbor, link)` pairs live at
    /// `adj_entries[adj_offsets[n] .. adj_offsets[n + 1]]`, in insertion
    /// order. One flat allocation keeps the per-node neighbor scans of the
    /// shortest-path kernels on contiguous memory instead of chasing a
    /// `Vec<Vec<_>>` pointer per node.
    adj_offsets: Vec<u32>,
    /// Flat `(neighbor, link)` entries backing [`Topology::neighbors`].
    adj_entries: Vec<(NodeId, LinkId)>,
    /// Largest per-direction link cost, fixed at build time. Bounds the
    /// key span of any Dijkstra frontier (see [`Topology::max_link_cost`]).
    max_link_cost: u32,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all node ids, in increasing order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Iterator over all link ids, in increasing order.
    pub fn link_ids(&self) -> impl ExactSizeIterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    // Documented contract panic: `NodeId`s are only minted by the builder of
    // the topology they index, so out-of-range means a cross-topology mixup.
    #[allow(clippy::indexing_slicing)]
    pub fn position(&self, n: NodeId) -> Point {
        self.positions[n.index()]
    }

    /// The link record for `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    // Documented contract panic: see `position`.
    #[allow(clippy::indexing_slicing)]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Geometric embedding of link `l` as a straight segment.
    pub fn segment(&self, l: LinkId) -> Segment {
        let link = self.link(l);
        Segment::new(self.position(link.a), self.position(link.b))
    }

    /// Neighbors of `n` as `(neighbor, link)` pairs, in insertion order.
    /// An out-of-range node has no neighbors.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        let i = n.index();
        match (
            self.adj_offsets.get(i).copied(),
            self.adj_offsets.get(i + 1).copied(),
        ) {
            (Some(start), Some(end)) => self
                .adj_entries
                .get(start as usize..end as usize)
                .unwrap_or(&[]),
            _ => &[],
        }
    }

    /// Degree of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// The link between `a` and `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .iter()
            .find(|&&(nbr, _)| nbr == b)
            .map(|&(_, l)| l)
    }

    /// Cost of traversing link `l` starting from node `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `l`.
    pub fn cost_from(&self, l: LinkId, from: NodeId) -> u32 {
        self.link(l).cost_from(from)
    }

    /// The largest per-direction link cost in the topology, or 0 when it
    /// has no links. Computed once at build time.
    ///
    /// Because all costs are positive and bounded by this value, every key
    /// pushed by a Dijkstra run lies within `max_link_cost` of the key
    /// being settled — the monotonicity bound that sizes the Dial bucket
    /// queue in `rtr-routing`.
    pub fn max_link_cost(&self) -> u32 {
        self.max_link_cost
    }

    /// Euclidean length of link `l`'s embedding.
    pub fn link_length(&self, l: LinkId) -> f64 {
        self.segment(l).length()
    }

    /// Returns true when the whole graph is connected (ignoring failures).
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![NodeId(0)];
        if let Some(s) = seen.first_mut() {
            *s = true;
        }
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(nbr, _) in self.neighbors(n) {
                if let Some(s) = seen.get_mut(nbr.index()) {
                    if !*s {
                        *s = true;
                        count += 1;
                        stack.push(nbr);
                    }
                }
            }
        }
        count == self.node_count()
    }

    /// Returns true when no two link embeddings properly cross, i.e. the
    /// embedding is planar as drawn.
    pub fn is_planar_embedding(&self) -> bool {
        use crate::geometry::segments_cross;
        for i in 0..self.links.len() {
            for j in (i + 1)..self.links.len() {
                if segments_cross(
                    self.segment(LinkId(i as u32)),
                    self.segment(LinkId(j as u32)),
                ) {
                    return false;
                }
            }
        }
        true
    }
}

/// Incremental builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    positions: Vec<Point>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `pos` and returns its id.
    pub fn add_node(&mut self, pos: impl Into<Point>) -> NodeId {
        let id = NodeId(self.positions.len() as u32);
        self.positions.push(pos.into());
        self.adjacency.push(Vec::new());
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of links added so far.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns true when a link between `a` and `b` was already added.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(a.index())
            .is_some_and(|adj| adj.iter().any(|&(nbr, _)| nbr == b))
    }

    /// Adds an undirected link with a symmetric cost.
    ///
    /// # Errors
    ///
    /// See [`TopologyBuilder::add_link_asymmetric`].
    pub fn add_link(&mut self, a: NodeId, b: NodeId, cost: u32) -> Result<LinkId, TopologyError> {
        self.add_link_asymmetric(a, b, cost, cost)
    }

    /// Adds an undirected link with per-direction costs (`cost_ab` for a→b).
    ///
    /// # Errors
    ///
    /// Fails on unknown endpoints, self-loops, duplicate links, or a zero
    /// cost in either direction.
    pub fn add_link_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        cost_ab: u32,
        cost_ba: u32,
    ) -> Result<LinkId, TopologyError> {
        if a.index() >= self.positions.len() {
            return Err(TopologyError::UnknownNode(a));
        }
        if b.index() >= self.positions.len() {
            return Err(TopologyError::UnknownNode(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self.has_link(a, b) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        if cost_ab == 0 || cost_ba == 0 {
            return Err(TopologyError::ZeroCost(a, b));
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            cost_ab,
            cost_ba,
        });
        if let Some(adj) = self.adjacency.get_mut(a.index()) {
            adj.push((b, id));
        }
        if let Some(adj) = self.adjacency.get_mut(b.index()) {
            adj.push((a, id));
        }
        Ok(id)
    }

    /// Finalizes the topology.
    ///
    /// # Errors
    ///
    /// Fails if any coordinate is non-finite or if node/link counts exceed
    /// the 24-bit topology id space ([`MAX_IDS`]).
    pub fn build(self) -> Result<Topology, TopologyError> {
        if let Some(i) = self.positions.iter().position(|p| !p.is_finite()) {
            return Err(TopologyError::BadCoordinate(i));
        }
        if self.positions.len() > MAX_IDS {
            return Err(TopologyError::TooLarge("nodes"));
        }
        if self.links.len() > MAX_IDS {
            return Err(TopologyError::TooLarge("links"));
        }
        // Flatten the builder's per-node lists into the CSR layout. Entry
        // counts are bounded by 2 * links <= 2^25, so offsets fit in u32.
        let mut adj_offsets = Vec::with_capacity(self.adjacency.len() + 1);
        let mut adj_entries = Vec::with_capacity(2 * self.links.len());
        adj_offsets.push(0u32);
        for list in &self.adjacency {
            adj_entries.extend_from_slice(list);
            adj_offsets.push(adj_entries.len() as u32);
        }
        let max_link_cost = self
            .links
            .iter()
            .map(|l| l.cost_ab.max(l.cost_ba))
            .max()
            .unwrap_or(0);
        Ok(Topology {
            positions: self.positions,
            links: self.links,
            adj_offsets,
            adj_entries,
            max_link_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 0.0));
        let v2 = b.add_node(Point::new(1.0, 2.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v1, v2, 1).unwrap();
        b.add_link(v2, v0, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_counts() {
        let topo = triangle();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 3);
        assert_eq!(topo.node_ids().count(), 3);
        assert_eq!(topo.link_ids().count(), 3);
    }

    #[test]
    fn neighbors_and_degree() {
        let topo = triangle();
        assert_eq!(topo.degree(NodeId(0)), 2);
        let nbrs: Vec<NodeId> = topo.neighbors(NodeId(0)).iter().map(|&(n, _)| n).collect();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn out_of_range_node_has_no_neighbors() {
        let topo = triangle();
        assert!(topo.neighbors(NodeId(99)).is_empty());
        assert_eq!(topo.degree(NodeId(99)), 0);
    }

    #[test]
    fn csr_neighbors_match_builder_insertion_order() {
        // A star inserted hub-last: every rim node's first neighbor is the
        // next rim node (ring links first), then the hub.
        let mut b = Topology::builder();
        let hub = b.add_node(Point::new(0.0, 0.0));
        let mut rim = Vec::new();
        for i in 0..4 {
            rim.push(b.add_node(Point::new(1.0 + i as f64, 0.0)));
        }
        for i in 0..4usize {
            b.add_link(rim[i], rim[(i + 1) % 4], 1).unwrap();
        }
        for &r in &rim {
            b.add_link(hub, r, 1).unwrap();
        }
        let topo = b.build().unwrap();
        let hub_nbrs: Vec<NodeId> = topo.neighbors(hub).iter().map(|&(n, _)| n).collect();
        assert_eq!(hub_nbrs, rim);
        let r0: Vec<NodeId> = topo.neighbors(rim[0]).iter().map(|&(n, _)| n).collect();
        assert_eq!(r0, vec![rim[1], rim[3], hub]);
    }

    #[test]
    fn link_between_both_directions() {
        let topo = triangle();
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(topo.link_between(NodeId(1), NodeId(0)), Some(l));
        assert_eq!(topo.link_between(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn link_endpoints_and_other_end() {
        let topo = triangle();
        let l = topo.link_between(NodeId(1), NodeId(2)).unwrap();
        let link = topo.link(l);
        assert!(link.is_incident_to(NodeId(1)));
        assert!(link.is_incident_to(NodeId(2)));
        assert!(!link.is_incident_to(NodeId(0)));
        assert_eq!(link.other_end(NodeId(1)), NodeId(2));
        assert_eq!(link.other_end(NodeId(2)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_panics_for_non_endpoint() {
        let topo = triangle();
        let l = topo.link_between(NodeId(1), NodeId(2)).unwrap();
        let _ = topo.link(l).other_end(NodeId(0));
    }

    #[test]
    fn asymmetric_costs() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(1.0, 0.0));
        let l = b.add_link_asymmetric(v0, v1, 3, 7).unwrap();
        let topo = b.build().unwrap();
        assert_eq!(topo.cost_from(l, v0), 3);
        assert_eq!(topo.cost_from(l, v1), 7);
    }

    #[test]
    fn max_link_cost_tracks_both_directions() {
        assert_eq!(triangle().max_link_cost(), 1);
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(1.0, 0.0));
        let v2 = b.add_node(Point::new(2.0, 0.0));
        b.add_link(v0, v1, 3).unwrap();
        b.add_link_asymmetric(v1, v2, 2, 9).unwrap();
        assert_eq!(b.build().unwrap().max_link_cost(), 9);
        assert_eq!(Topology::builder().build().unwrap().max_link_cost(), 0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(b.add_link(v0, v0, 1), Err(TopologyError::SelfLoop(v0)));
    }

    #[test]
    fn rejects_duplicate_link() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(1.0, 0.0));
        b.add_link(v0, v1, 1).unwrap();
        assert_eq!(
            b.add_link(v1, v0, 1),
            Err(TopologyError::DuplicateLink(v1, v0))
        );
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(
            b.add_link(v0, NodeId(9), 1),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn rejects_zero_cost() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(1.0, 0.0));
        assert_eq!(b.add_link(v0, v1, 0), Err(TopologyError::ZeroCost(v0, v1)));
    }

    #[test]
    fn rejects_bad_coordinates_at_build() {
        let mut b = Topology::builder();
        b.add_node(Point::new(f64::NAN, 0.0));
        assert_eq!(b.build().unwrap_err(), TopologyError::BadCoordinate(0));
    }

    #[test]
    fn connectivity() {
        let topo = triangle();
        assert!(topo.is_connected());

        let mut b = Topology::builder();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(1.0, 0.0));
        let disconnected = b.build().unwrap();
        assert!(!disconnected.is_connected());

        let empty = Topology::builder().build().unwrap();
        assert!(empty.is_connected());
    }

    #[test]
    fn planar_embedding_detection() {
        assert!(triangle().is_planar_embedding());

        // An X of two crossing links.
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v2, v3, 1).unwrap();
        let x = b.build().unwrap();
        assert!(!x.is_planar_embedding());
    }

    #[test]
    fn segment_embedding_matches_positions() {
        let topo = triangle();
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let s = topo.segment(l);
        assert_eq!(s.a, topo.position(topo.link(l).a()));
        assert_eq!(s.b, topo.position(topo.link(l).b()));
        assert_eq!(topo.link_length(l), 2.0);
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(4).to_string(), "v4");
        assert_eq!(LinkId(7).to_string(), "e7");
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            TopologyError::SelfLoop(NodeId(3)).to_string(),
            "self-loop at node v3"
        );
        assert_eq!(
            TopologyError::TooLarge("nodes").to_string(),
            "too many nodes for the 24-bit topology id space"
        );
    }
}
