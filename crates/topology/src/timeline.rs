//! Dynamic failure timelines: ordered fail/repair event streams.
//!
//! The paper evaluates one static failure area, but real large-scale
//! failures evolve — a storm front moves across the plane, repaired
//! routers come back, a second area fails while the first is still being
//! recovered. A [`Timeline`] captures that regime as an ordered sequence
//! of timestamped [`TimelineEvent`]s, each a batch of links going down
//! and links coming back up. Applying the prefix of a timeline to a
//! [`LinkMask`](crate::LinkMask) yields the converged routing view after
//! that many events; the eval layer patches its per-topology baseline
//! incrementally from event to event instead of recomputing it.
//!
//! Everything here is deterministic: the generators derive every choice
//! from their explicit seed or geometry, so a timeline can be
//! regenerated bit-for-bit from its parameters.
//!
//! # Examples
//!
//! ```
//! use rtr_topology::{generate, timeline::Timeline, LinkMask, Point};
//!
//! let topo = generate::grid(6, 6, 100.0);
//! // A circular damage front sweeping left-to-right across the grid.
//! let tl = Timeline::moving_front(&topo, Point::new(0.0, 250.0), (120.0, 0.0), 150.0, 8, 1_000);
//! assert!(!tl.is_empty());
//! // Replaying the full timeline yields the final converged link view.
//! let mask = tl.mask_after(&topo, tl.len());
//! assert_eq!(mask.removed_count(), tl.mask_after(&topo, tl.len()).removed_count());
//! ```

use crate::failure::{FailureScenario, LinkMask, Region};
use crate::graph::{LinkId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One timestamped churn step: a batch of links failing and a batch of
/// links coming back.
///
/// Both lists may mention links in any state — failing an already-failed
/// link and repairing a never-failed link are no-ops when the event is
/// applied ([`apply_to`](Self::apply_to)), so raw event streams from
/// external observations replay without pre-normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Event time in milliseconds from the timeline origin.
    pub at_ms: u64,
    /// Links going down at this instant.
    pub down: Vec<LinkId>,
    /// Links restored at this instant.
    pub up: Vec<LinkId>,
}

impl TimelineEvent {
    /// Applies this event to a converged link view: removes every `down`
    /// link and restores every `up` link. Out-of-range ids and links
    /// already in the target state are no-ops.
    pub fn apply_to(&self, mask: &mut LinkMask) {
        for &l in &self.down {
            mask.remove(l);
        }
        for &l in &self.up {
            mask.restore(l);
        }
    }

    /// True when the event changes nothing (both batches empty).
    pub fn is_empty(&self) -> bool {
        self.down.is_empty() && self.up.is_empty()
    }
}

/// An ordered sequence of timestamped fail/repair events over one
/// topology's links.
///
/// Events are kept sorted by [`TimelineEvent::at_ms`] (stable: ties keep
/// insertion order), so replaying `events()[..k]` always yields the
/// converged state "k events in".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Builds a timeline from explicit events, sorting them by time
    /// (stable, so same-instant events keep their given order).
    pub fn from_events(mut events: Vec<TimelineEvent>) -> Self {
        events.sort_by_key(|e| e.at_ms);
        Timeline { events }
    }

    /// The ordered event sequence.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The converged link view after the first `k` events (clamped to the
    /// timeline length): every `down` link of the prefix removed unless a
    /// later `up` of the prefix restored it.
    pub fn mask_after(&self, topo: &Topology, k: usize) -> LinkMask {
        let mut mask = LinkMask::none(topo);
        for ev in self.events.iter().take(k) {
            ev.apply_to(&mut mask);
        }
        mask
    }

    /// A circular damage front of the given `radius` starting at `start`
    /// and moving by `velocity` (plane units per step) for `steps` steps,
    /// `dt_ms` apart. Links entering the front's footprint (failed links
    /// and links incident to failed nodes, the area-failure semantics of
    /// [`FailureScenario::from_region`]) go down; links the front has
    /// passed beyond are repaired. Steps that change nothing emit no
    /// event. Deterministic in its geometry.
    pub fn moving_front(
        topo: &Topology,
        start: crate::geometry::Point,
        velocity: (f64, f64),
        radius: f64,
        steps: usize,
        dt_ms: u64,
    ) -> Self {
        let stages: Vec<(u64, Region)> = (0..steps)
            .map(|k| {
                let c = crate::geometry::Point::new(
                    start.x + velocity.0 * k as f64,
                    start.y + velocity.1 * k as f64,
                );
                (k as u64 * dt_ms, Region::circle(c, radius))
            })
            .collect();
        Self::from_region_stages(topo, &stages)
    }

    /// A timeline whose state at each timestamped stage is exactly the
    /// unusable-link set of that stage's region: the first stage is the
    /// area onset, a stage whose region is a grown
    /// [`Region::Union`](Region) models expansion or a second
    /// overlapping area, and a stage whose region shrank repairs what it
    /// no longer covers. Consecutive identical footprints emit no event.
    pub fn from_region_stages(topo: &Topology, stages: &[(u64, Region)]) -> Self {
        let mut prev = vec![false; topo.link_count()];
        let mut events = Vec::new();
        for (at_ms, region) in stages {
            let scenario = FailureScenario::from_region(topo, region);
            let mut cur = vec![false; topo.link_count()];
            for l in scenario.unusable_links(topo) {
                if let Some(c) = cur.get_mut(l.index()) {
                    *c = true;
                }
            }
            push_delta(&mut events, *at_ms, &prev, &cur);
            prev = cur;
        }
        Timeline { events }
    }

    /// A random-churn stream: each of the `steps` steps (spaced `dt_ms`
    /// apart) first repairs each currently-down link with probability
    /// `repair_prob`, then fails `fail_per_step` links drawn uniformly
    /// from the still-live ones. Deterministic in `seed`. Steps that
    /// change nothing emit no event.
    pub fn random_churn(
        topo: &Topology,
        steps: usize,
        dt_ms: u64,
        fail_per_step: usize,
        repair_prob: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4u64.rotate_left(32));
        let mut down = vec![false; topo.link_count()];
        let mut events = Vec::new();
        for k in 0..steps {
            let mut up_batch: Vec<LinkId> = Vec::new();
            for l in topo.link_ids() {
                if down.get(l.index()).copied().unwrap_or(false)
                    && rng.gen_range(0.0..1.0) < repair_prob
                {
                    up_batch.push(l);
                }
            }
            for &l in &up_batch {
                if let Some(d) = down.get_mut(l.index()) {
                    *d = false;
                }
            }
            let live: Vec<LinkId> = topo
                .link_ids()
                .filter(|l| !down.get(l.index()).copied().unwrap_or(false))
                .collect();
            let mut down_batch: Vec<LinkId> = Vec::new();
            let take = fail_per_step.min(live.len());
            // Partial Fisher-Yates over the live list: the first `take`
            // positions end up holding a uniform distinct sample.
            let mut live = live;
            for i in 0..take {
                let j = rng.gen_range(i..live.len());
                live.swap(i, j);
                let Some(&l) = live.get(i) else { break };
                down_batch.push(l);
                if let Some(d) = down.get_mut(l.index()) {
                    *d = true;
                }
            }
            down_batch.sort_unstable_by_key(|l| l.index());
            if !down_batch.is_empty() || !up_batch.is_empty() {
                events.push(TimelineEvent {
                    at_ms: k as u64 * dt_ms,
                    down: down_batch,
                    up: up_batch,
                });
            }
        }
        Timeline { events }
    }
}

/// Pushes the delta event between two link-down states (ascending link
/// order in both batches), skipping empty deltas.
fn push_delta(events: &mut Vec<TimelineEvent>, at_ms: u64, prev: &[bool], cur: &[bool]) {
    let mut down = Vec::new();
    let mut up = Vec::new();
    for (i, (&was, &is)) in prev.iter().zip(cur.iter()).enumerate() {
        match (was, is) {
            (false, true) => down.push(LinkId(i as u32)),
            (true, false) => up.push(LinkId(i as u32)),
            _ => {}
        }
    }
    if !down.is_empty() || !up.is_empty() {
        events.push(TimelineEvent { at_ms, down, up });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::geometry::Point;

    #[test]
    fn from_events_sorts_stably() {
        let topo = generate::grid(3, 3, 10.0);
        let e = |at_ms, l: u32| TimelineEvent {
            at_ms,
            down: vec![LinkId(l)],
            up: vec![],
        };
        let tl = Timeline::from_events(vec![e(5, 0), e(1, 1), e(5, 2), e(0, 3)]);
        let order: Vec<u64> = tl.events().iter().map(|e| e.at_ms).collect();
        assert_eq!(order, [0, 1, 5, 5]);
        // Stable: the two at_ms == 5 events keep insertion order.
        assert_eq!(tl.events()[2].down, [LinkId(0)]);
        assert_eq!(tl.events()[3].down, [LinkId(2)]);
        let mask = tl.mask_after(&topo, tl.len());
        assert_eq!(mask.removed_count(), 4);
    }

    #[test]
    fn apply_is_idempotent_and_total() {
        let topo = generate::grid(3, 3, 10.0);
        let mut mask = LinkMask::none(&topo);
        let ev = TimelineEvent {
            at_ms: 0,
            down: vec![LinkId(1), LinkId(1), LinkId(9999)],
            up: vec![LinkId(2), LinkId(9999)], // repair of a never-failed link: no-op
        };
        ev.apply_to(&mut mask);
        assert!(mask.is_removed(LinkId(1)));
        assert!(!mask.is_removed(LinkId(2)));
        assert_eq!(mask.removed_count(), 1);
        // Re-applying changes nothing.
        ev.apply_to(&mut mask);
        assert_eq!(mask.removed_count(), 1);
    }

    #[test]
    fn moving_front_fails_then_repairs() {
        let topo = generate::grid(8, 4, 100.0);
        let tl =
            Timeline::moving_front(&topo, Point::new(0.0, 150.0), (150.0, 0.0), 180.0, 10, 500);
        assert!(!tl.is_empty());
        assert!(
            tl.events().iter().any(|e| !e.up.is_empty()),
            "a passing front must repair links behind it"
        );
        // Once the front has left the grid, everything is repaired.
        let end = tl.mask_after(&topo, tl.len());
        assert_eq!(end.removed_count(), 0, "front exits to the right");
        // Timestamps ascend in dt steps.
        let mut prev = None;
        for e in tl.events() {
            assert!(prev <= Some(e.at_ms));
            assert_eq!(e.at_ms % 500, 0);
            prev = Some(e.at_ms);
        }
    }

    #[test]
    fn moving_front_prefix_state_matches_region_harvest() {
        let topo = generate::grid(6, 6, 100.0);
        let (start, vel, radius, steps) = (Point::new(50.0, 250.0), (110.0, 0.0), 160.0, 7);
        let tl = Timeline::moving_front(&topo, start, vel, radius, steps, 1_000);
        // Replaying k events must equal the k-th front footprint directly.
        let mut event_idx = 0;
        for k in 0..steps {
            let c = Point::new(start.x + vel.0 * k as f64, start.y + vel.1 * k as f64);
            let scenario = FailureScenario::from_region(&topo, &Region::circle(c, radius));
            // Advance past every event at or before this step's timestamp.
            while event_idx < tl.len() && tl.events()[event_idx].at_ms <= k as u64 * 1_000 {
                event_idx += 1;
            }
            let mask = tl.mask_after(&topo, event_idx);
            for l in topo.link_ids() {
                let in_front = scenario.unusable_links(&topo).any(|u| u == l);
                assert_eq!(mask.is_removed(l), in_front, "link {l} at step {k}");
            }
        }
    }

    #[test]
    fn region_stages_model_onset_expansion_overlap() {
        let topo = generate::grid(8, 8, 100.0);
        let a = Region::circle((150.0, 150.0), 140.0);
        let b = Region::circle((150.0, 150.0), 260.0); // expansion of a
        let c = Region::circle((550.0, 550.0), 180.0); // second, disjoint area
        let tl = Timeline::from_region_stages(
            &topo,
            &[
                (0, a.clone()),
                (1_000, Region::Union(vec![a.clone(), b.clone()])),
                (2_000, Region::Union(vec![b, c])),
            ],
        );
        assert!(tl.len() >= 2, "onset and at least one growth event");
        // The onset fails links, never repairs.
        assert!(tl.events()[0].up.is_empty());
        assert!(!tl.events()[0].down.is_empty());
        // Expansion only adds failures (a union containing the old area).
        assert!(tl.events()[1].up.is_empty());
    }

    #[test]
    fn random_churn_is_deterministic_and_consistent() {
        let topo = generate::isp_like(30, 70, 2000.0, 3).unwrap();
        let tl = Timeline::random_churn(&topo, 12, 250, 4, 0.3, 42);
        let again = Timeline::random_churn(&topo, 12, 250, 4, 0.3, 42);
        assert_eq!(tl, again, "same seed, same stream");
        let other = Timeline::random_churn(&topo, 12, 250, 4, 0.3, 43);
        assert_ne!(tl, other, "different seed diverges");

        // Internal consistency: a link never fails while already down or
        // repairs while already up.
        let mut down = vec![false; topo.link_count()];
        for ev in tl.events() {
            for &l in &ev.up {
                assert!(down[l.index()], "repairing a live link at {}", ev.at_ms);
                down[l.index()] = false;
            }
            for &l in &ev.down {
                assert!(!down[l.index()], "failing a dead link at {}", ev.at_ms);
                down[l.index()] = true;
            }
        }
    }

    #[test]
    fn mask_after_clamps_and_accumulates() {
        let topo = generate::grid(4, 4, 10.0);
        let tl = Timeline::from_events(vec![
            TimelineEvent {
                at_ms: 0,
                down: vec![LinkId(0), LinkId(1)],
                up: vec![],
            },
            TimelineEvent {
                at_ms: 10,
                down: vec![],
                up: vec![LinkId(0)],
            },
        ]);
        assert_eq!(tl.mask_after(&topo, 0).removed_count(), 0);
        assert_eq!(tl.mask_after(&topo, 1).removed_count(), 2);
        let end = tl.mask_after(&topo, 99);
        assert_eq!(end.removed_count(), 1);
        assert!(end.is_removed(LinkId(1)));
        assert!(!end.is_removed(LinkId(0)));
    }
}
