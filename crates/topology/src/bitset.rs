//! Word-parallel bitset over [`LinkId`]s.
//!
//! The hot paths of the reproduction test link membership constantly: the
//! phase-1 sweep asks "does this candidate cross any excluded link?" at
//! every step, and the test-case harvest asks "is this link failed?" for
//! every incident link of every node. Ids are dense (assigned from zero by
//! [`TopologyBuilder`](crate::TopologyBuilder)), so a flat `u64`
//! block array answers membership in one shift and intersection in a
//! handful of ANDs — the data-structure counterpart of the incremental-SPF
//! efficiency work this milestone follows.

use crate::graph::LinkId;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A set of [`LinkId`]s stored as `u64` blocks, indexed by id.
///
/// Inserts grow the block array on demand; membership and word-parallel
/// intersection never allocate. Equality is *semantic*: two sets with the
/// same members compare equal regardless of trailing capacity.
///
/// # Examples
///
/// ```
/// use rtr_topology::{LinkBitSet, LinkId};
///
/// let mut s = LinkBitSet::new();
/// assert!(s.insert(LinkId(3)));
/// assert!(!s.insert(LinkId(3)));
/// assert!(s.contains(LinkId(3)));
/// assert!(!s.contains(LinkId(200)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![LinkId(3)]);
/// ```
#[derive(Clone, Default)]
pub struct LinkBitSet {
    words: Vec<u64>,
}

impl LinkBitSet {
    /// An empty set; blocks are allocated on first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized for ids `0..nlinks`, so inserts within that
    /// range never reallocate.
    pub fn with_link_capacity(nlinks: usize) -> Self {
        LinkBitSet {
            words: vec![0; nlinks.div_ceil(WORD_BITS)],
        }
    }

    /// Inserts `l`, growing the block array if needed. Returns true when
    /// the id was not already present.
    pub fn insert(&mut self, l: LinkId) -> bool {
        let (w, bit) = (l.index() / WORD_BITS, 1u64 << (l.index() % WORD_BITS));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        match self.words.get_mut(w) {
            Some(word) if *word & bit == 0 => {
                *word |= bit;
                true
            }
            _ => false,
        }
    }

    /// Returns true when `l` is present. Ids beyond the allocated blocks
    /// are absent by definition.
    #[inline]
    pub fn contains(&self, l: LinkId) -> bool {
        self.words
            .get(l.index() / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (l.index() % WORD_BITS)) != 0)
    }

    /// Removes every member, retaining capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns true when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            // Peel the lowest set bit each step; the closure is only ever
            // invoked on non-zero words.
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let peeled = rest & (rest - 1);
                (peeled != 0).then_some(peeled)
            })
            .map(move |rest| LinkId((i * WORD_BITS + rest.trailing_zeros() as usize) as u32))
        })
    }

    /// Returns true when the two sets share any member: a word-parallel
    /// AND over the overlapping blocks.
    pub fn intersects(&self, other: &LinkBitSet) -> bool {
        self.intersects_words(&other.words)
    }

    /// Like [`intersects`](Self::intersects), against a raw block slice
    /// (e.g. one row of [`CrossLinkTable`](crate::CrossLinkTable)'s
    /// crossing-mask matrix).
    #[inline]
    pub fn intersects_words(&self, words: &[u64]) -> bool {
        crate::kernels::intersect_any_scalar(&self.words, words)
    }

    /// Like [`intersects_words`](Self::intersects_words), but through an
    /// explicit [`MaskKernel`](crate::MaskKernel) — the sweep hot path's
    /// entry point for the batched/AVX2 lanes.
    #[inline]
    pub fn intersects_words_with(&self, kernel: crate::MaskKernel, words: &[u64]) -> bool {
        crate::kernels::intersect_any(kernel, &self.words, words)
    }

    /// Adds every member of `other` (word-parallel OR).
    pub fn union_with(&mut self, other: &LinkBitSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The raw storage blocks (low ids in low bits of early words).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl PartialEq for LinkBitSet {
    fn eq(&self, other: &Self) -> bool {
        // Compare over the longer storage, reading absent words as 0, so
        // trailing capacity is never observable.
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for LinkBitSet {}

impl std::fmt::Debug for LinkBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<LinkId> for LinkBitSet {
    fn from_iter<T: IntoIterator<Item = LinkId>>(iter: T) -> Self {
        let mut s = LinkBitSet::new();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl Extend<LinkId> for LinkBitSet {
    fn extend<T: IntoIterator<Item = LinkId>>(&mut self, iter: T) {
        for l in iter {
            self.insert(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = LinkBitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(LinkId(0)));
        assert!(s.insert(LinkId(63)));
        assert!(s.insert(LinkId(64)));
        assert!(s.insert(LinkId(1000)));
        assert!(!s.insert(LinkId(64)));
        assert_eq!(s.len(), 4);
        for id in [0u32, 63, 64, 1000] {
            assert!(s.contains(LinkId(id)));
        }
        assert!(!s.contains(LinkId(65)));
        assert!(!s.contains(LinkId(100_000)));
    }

    #[test]
    fn iteration_is_ascending() {
        let s: LinkBitSet = [LinkId(130), LinkId(2), LinkId(64), LinkId(3)]
            .into_iter()
            .collect();
        let ids: Vec<LinkId> = s.iter().collect();
        assert_eq!(ids, vec![LinkId(2), LinkId(3), LinkId(64), LinkId(130)]);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = LinkBitSet::with_link_capacity(1000);
        let mut b = LinkBitSet::new();
        a.insert(LinkId(5));
        b.insert(LinkId(5));
        assert_eq!(a, b);
        b.insert(LinkId(900));
        assert_ne!(a, b);
        assert_eq!(LinkBitSet::with_link_capacity(500), LinkBitSet::new());
    }

    #[test]
    fn intersects_is_word_parallel_and_symmetric() {
        let a: LinkBitSet = [LinkId(1), LinkId(200)].into_iter().collect();
        let b: LinkBitSet = [LinkId(200)].into_iter().collect();
        let c: LinkBitSet = [LinkId(2), LinkId(199)].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&LinkBitSet::new()));
        assert!(a.intersects_words(b.words()));
    }

    #[test]
    fn union_clear_and_debug() {
        let mut a: LinkBitSet = [LinkId(1)].into_iter().collect();
        let b: LinkBitSet = [LinkId(90)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains(LinkId(90)));
        assert_eq!(format!("{a:?}"), "{LinkId(1), LinkId(90)}");
        a.clear();
        assert!(a.is_empty());
        assert!(!a.words().is_empty(), "clear retains capacity");
    }
}
