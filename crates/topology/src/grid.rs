//! Uniform spatial grids over the topology's geometric embedding.
//!
//! The geometry layer has two super-linear construction paths that die
//! first at scale: cross-link precomputation (all-pairs segment
//! intersection, O(m²)) and failure-region application (every-link
//! region tests per scenario). Both reduce to *rectangle stabbing*:
//! find the segments whose bounding boxes overlap a query box. A
//! [`SegmentGrid`] answers that in time proportional to the cells the
//! query box covers, with cell size derived from the *median* segment
//! length so a typical link occupies O(1) cells regardless of topology
//! size.
//!
//! [`PointGrid`] is the point-set counterpart used by the scalable
//! generators in [`crate::generate`]: incremental insertion plus an
//! expanding-ring nearest-neighbor search replaces the O(n²)
//! nearest-predecessor scan of the original `isp_like` construction.
//!
//! Everything here is deterministic: iteration follows cell order and
//! ascending ids, never hash or allocation order, so generated
//! topologies and cross-link tables are byte-identical across runs.

use crate::bitset::LinkBitSet;
use crate::geometry::{Point, Segment};
use crate::graph::{LinkId, Topology};

/// Axis-aligned bounding box of a segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Bbox {
    pub(crate) min_x: f64,
    pub(crate) max_x: f64,
    pub(crate) min_y: f64,
    pub(crate) max_y: f64,
}

impl Bbox {
    /// The bounding box of segment `s`.
    pub(crate) fn of_segment(s: Segment) -> Self {
        Bbox {
            min_x: s.a.x.min(s.b.x),
            max_x: s.a.x.max(s.b.x),
            min_y: s.a.y.min(s.b.y),
            max_y: s.a.y.max(s.b.y),
        }
    }

    /// Returns true when the two (closed) boxes share any point.
    pub(crate) fn overlaps(self, other: Bbox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }
}

/// Soft cap on total cell count, as a multiple of the link count: keeps
/// the grid memory linear in m even when the median segment is tiny
/// relative to the embedding extent.
const CELLS_PER_LINK: usize = 4;

/// A uniform grid over the bounding boxes of a topology's link segments.
///
/// Each link is registered in every cell its bounding box overlaps
/// (CSR layout: one flat entry array plus per-cell offsets). Queries
/// visit only the cells a query box covers; candidate pairs for
/// intersection tests are enumerated per cell with a *canonical-cell*
/// rule that reports each pair exactly once without any dedup set.
///
/// # Examples
///
/// ```
/// use rtr_topology::{Topology, Point, SegmentGrid, LinkBitSet};
/// # fn main() -> Result<(), rtr_topology::TopologyError> {
/// let mut b = Topology::builder();
/// let v0 = b.add_node(Point::new(0.0, 0.0));
/// let v1 = b.add_node(Point::new(10.0, 0.0));
/// b.add_link(v0, v1, 1)?;
/// let topo = b.build()?;
/// let grid = SegmentGrid::new(&topo);
/// let mut seen = LinkBitSet::with_link_capacity(topo.link_count());
/// let mut hits = Vec::new();
/// grid.for_candidates(
///     Point::new(4.0, -1.0),
///     Point::new(6.0, 1.0),
///     &mut seen,
///     |l| hits.push(l),
/// );
/// assert_eq!(hits.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentGrid {
    /// Lower-left corner of the gridded area.
    min_x: f64,
    min_y: f64,
    /// Cell side length (> 0).
    cell: f64,
    /// Grid dimensions in cells (both >= 1).
    nx: usize,
    ny: usize,
    /// CSR offsets: cell `c`'s link indices live at
    /// `entries[cell_start[c] .. cell_start[c + 1]]`, ascending.
    cell_start: Vec<u32>,
    /// Flat link-index entries backing the cells.
    entries: Vec<u32>,
    /// Per-link bounding boxes, indexed by link id.
    boxes: Vec<Bbox>,
}

impl SegmentGrid {
    /// Builds the grid over every link segment of `topo`.
    ///
    /// Cell size is the median segment length (robust against a few
    /// continent-spanning backbone links skewing the mean), clamped so
    /// the total cell count stays O(m).
    pub fn new(topo: &Topology) -> Self {
        let m = topo.link_count();
        let boxes: Vec<Bbox> = topo
            .link_ids()
            .map(|l| Bbox::of_segment(topo.segment(l)))
            .collect();

        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for b in &boxes {
            min_x = min_x.min(b.min_x);
            min_y = min_y.min(b.min_y);
            max_x = max_x.max(b.max_x);
            max_y = max_y.max(b.max_y);
        }
        if m == 0 {
            return SegmentGrid {
                min_x: 0.0,
                min_y: 0.0,
                cell: 1.0,
                nx: 1,
                ny: 1,
                cell_start: vec![0, 0],
                entries: Vec::new(),
                boxes,
            };
        }
        let width = (max_x - min_x).max(0.0);
        let height = (max_y - min_y).max(0.0);

        let mut lengths: Vec<f64> = topo.link_ids().map(|l| topo.segment(l).length()).collect();
        let mid = lengths.len() / 2;
        lengths.select_nth_unstable_by(mid, f64::total_cmp);
        let median = lengths.get(mid).copied().unwrap_or(0.0);
        let mut cell = median;
        if cell <= 0.0 {
            // Degenerate embedding (coincident endpoints): fall back to a
            // roughly sqrt(m) × sqrt(m) grid over the extent.
            cell = (width.max(height) / (m as f64).sqrt()).max(1.0);
        }
        // Cap the cell count at CELLS_PER_LINK * m (plus slack for tiny
        // topologies) so grid memory stays linear in the link count.
        let cap = (CELLS_PER_LINK * m + 64) as f64;
        let want = (width / cell + 1.0) * (height / cell + 1.0);
        if want > cap {
            cell *= (want / cap).sqrt();
        }
        let nx = ((width / cell).ceil() as usize).max(1);
        let ny = ((height / cell).ceil() as usize).max(1);

        let mut grid = SegmentGrid {
            min_x,
            min_y,
            cell,
            nx,
            ny,
            cell_start: vec![0u32; nx * ny + 1],
            entries: Vec::new(),
            boxes,
        };

        // Counting sort of (cell, link) incidences: count, prefix-sum,
        // fill. Filling in ascending link order keeps every cell's entry
        // list sorted by link id, so all downstream iteration is
        // deterministic by construction.
        for b in &grid.boxes {
            let (x0, x1, y0, y1) = grid.cell_range(*b);
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    if let Some(c) = grid.cell_start.get_mut(iy * nx + ix + 1) {
                        *c += 1;
                    }
                }
            }
        }
        for c in 1..grid.cell_start.len() {
            let prev = grid.cell_start.get(c - 1).copied().unwrap_or(0);
            if let Some(v) = grid.cell_start.get_mut(c) {
                *v += prev;
            }
        }
        let mut cursor: Vec<u32> = grid.cell_start.clone();
        let total = grid.cell_start.last().copied().unwrap_or(0) as usize;
        let mut entries = vec![0u32; total];
        for (i, b) in grid.boxes.iter().enumerate() {
            let (x0, x1, y0, y1) = grid.cell_range(*b);
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    if let Some(pos) = cursor.get_mut(iy * nx + ix) {
                        if let Some(e) = entries.get_mut(*pos as usize) {
                            *e = i as u32;
                        }
                        *pos += 1;
                    }
                }
            }
        }
        grid.entries = entries;
        grid
    }

    /// Column index of coordinate `x`, clamped into the grid.
    fn cell_x(&self, x: f64) -> usize {
        let raw = ((x - self.min_x) / self.cell).floor();
        (raw.max(0.0) as usize).min(self.nx - 1)
    }

    /// Row index of coordinate `y`, clamped into the grid.
    fn cell_y(&self, y: f64) -> usize {
        let raw = ((y - self.min_y) / self.cell).floor();
        (raw.max(0.0) as usize).min(self.ny - 1)
    }

    /// Inclusive cell range `(x0, x1, y0, y1)` covered by a box.
    fn cell_range(&self, b: Bbox) -> (usize, usize, usize, usize) {
        (
            self.cell_x(b.min_x),
            self.cell_x(b.max_x),
            self.cell_y(b.min_y),
            self.cell_y(b.max_y),
        )
    }

    /// The bounding box of link index `i` (out of range: `None`).
    pub(crate) fn bbox(&self, i: usize) -> Option<Bbox> {
        self.boxes.get(i).copied()
    }

    /// Number of links the grid was built over.
    pub fn link_count(&self) -> usize {
        self.boxes.len()
    }

    /// Calls `f` once for every link whose bounding box overlaps the
    /// query box `[min, max]`, in ascending id order per visited cell.
    ///
    /// `seen` is caller-provided dedup scratch (a link spanning several
    /// cells is reported once); pass a set cleared between queries and
    /// sized via [`LinkBitSet::with_link_capacity`] for the topology's
    /// link count so this query never allocates.
    pub fn for_candidates(
        &self,
        min: Point,
        max: Point,
        seen: &mut LinkBitSet,
        mut f: impl FnMut(LinkId),
    ) {
        let q = Bbox {
            min_x: min.x,
            max_x: max.x,
            min_y: min.y,
            max_y: max.y,
        };
        let (x0, x1, y0, y1) = self.cell_range(q);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                let c = iy * self.nx + ix;
                let lo = self.cell_start.get(c).copied().unwrap_or(0) as usize;
                let hi = self.cell_start.get(c + 1).copied().unwrap_or(0) as usize;
                for &e in self.entries.get(lo..hi).unwrap_or(&[]) {
                    let overlaps = self.boxes.get(e as usize).is_some_and(|b| b.overlaps(q));
                    if overlaps && seen.insert(LinkId(e)) {
                        f(LinkId(e));
                    }
                }
            }
        }
    }

    /// Calls `f(i, j)` (with `i < j`) exactly once for every pair of
    /// links whose bounding boxes overlap — the candidate set the exact
    /// `segments_cross` test is run on.
    ///
    /// Dedup is by *canonical cell*: a pair sharing several cells is
    /// reported only from the cell containing the lower-left corner of
    /// their boxes' overlap region. That corner lies inside both boxes,
    /// so both links are registered in that cell; every other shared
    /// cell fails the corner test. No hash set, no sort — the pair set
    /// is identical to the bbox-filtered all-pairs scan.
    pub(crate) fn for_candidate_pairs(&self, mut f: impl FnMut(usize, usize)) {
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let c = iy * self.nx + ix;
                let lo = self.cell_start.get(c).copied().unwrap_or(0) as usize;
                let hi = self.cell_start.get(c + 1).copied().unwrap_or(0) as usize;
                let cell = self.entries.get(lo..hi).unwrap_or(&[]);
                for (k, &a) in cell.iter().enumerate() {
                    let Some(ba) = self.bbox(a as usize) else {
                        continue;
                    };
                    for &b in cell.get(k + 1..).unwrap_or(&[]) {
                        let Some(bb) = self.bbox(b as usize) else {
                            continue;
                        };
                        if !ba.overlaps(bb) {
                            continue;
                        }
                        let ox = ba.min_x.max(bb.min_x);
                        let oy = ba.min_y.max(bb.min_y);
                        if self.cell_x(ox) == ix && self.cell_y(oy) == iy {
                            f(a.min(b) as usize, a.max(b) as usize);
                        }
                    }
                }
            }
        }
    }
}

/// A uniform grid over a point set, supporting incremental insertion and
/// deterministic nearest-neighbor / radius queries.
///
/// Used by the scalable generators: the nearest-predecessor attachment
/// tree and the near-pair candidate enumeration both become near-linear.
/// Ties on distance break toward the smaller id, so results never depend
/// on traversal incidentals.
#[derive(Debug, Clone)]
pub struct PointGrid {
    min_x: f64,
    min_y: f64,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
}

/// Out-of-range cell lookups read as empty.
const EMPTY: &[u32] = &[];

impl PointGrid {
    /// An empty grid over `[min, max]` with the given cell side.
    ///
    /// # Panics
    ///
    /// Panics when `cell` is not strictly positive and finite, or the
    /// corners are not finite with `min <= max` per axis.
    pub fn new(min: Point, max: Point, cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "cell side must be positive and finite"
        );
        assert!(
            min.is_finite() && max.is_finite() && min.x <= max.x && min.y <= max.y,
            "grid corners must be finite and ordered"
        );
        let nx = (((max.x - min.x) / cell).ceil() as usize).max(1);
        let ny = (((max.y - min.y) / cell).ceil() as usize).max(1);
        PointGrid {
            min_x: min.x,
            min_y: min.y,
            cell,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
        }
    }

    /// Column index of coordinate `x`, clamped into the grid (points
    /// outside the declared bounds land in border cells).
    fn cell_x(&self, x: f64) -> usize {
        let raw = ((x - self.min_x) / self.cell).floor();
        (raw.max(0.0) as usize).min(self.nx - 1)
    }

    /// Row index of coordinate `y`, clamped into the grid.
    fn cell_y(&self, y: f64) -> usize {
        let raw = ((y - self.min_y) / self.cell).floor();
        (raw.max(0.0) as usize).min(self.ny - 1)
    }

    /// Inserts point `id` at `p`.
    pub fn insert(&mut self, id: u32, p: Point) {
        let c = self.cell_y(p.y) * self.nx + self.cell_x(p.x);
        if let Some(cell) = self.cells.get_mut(c) {
            cell.push(id);
        }
    }

    /// The inserted id nearest to `p` (its coordinates read from
    /// `positions`), or `None` when the grid is empty. Distance ties
    /// break toward the smaller id.
    ///
    /// Expanding-ring search: cells at Chebyshev ring `r` from the query
    /// cell are at least `(r - 1) * cell` away, so once the best
    /// candidate is closer than that bound no further ring can improve
    /// on it.
    pub fn nearest(&self, p: Point, positions: &[Point]) -> Option<u32> {
        let cx = self.cell_x(p.x) as i64;
        let cy = self.cell_y(p.y) as i64;
        let max_ring = (self.nx.max(self.ny)) as i64;
        let mut best: Option<(f64, u32)> = None;
        for r in 0..=max_ring {
            if let Some((d2, _)) = best {
                let lower = ((r - 1).max(0) as f64) * self.cell;
                if d2 <= lower * lower {
                    break;
                }
            }
            self.for_ring_cells(cx, cy, r, |cell| {
                for &id in cell {
                    let Some(&q) = positions.get(id as usize) else {
                        continue;
                    };
                    let d2 = p.distance_squared(q);
                    let better = match best {
                        None => true,
                        Some((bd, bid)) => d2 < bd || (d2 == bd && id < bid),
                    };
                    if better {
                        best = Some((d2, id));
                    }
                }
            });
        }
        best.map(|(_, id)| id)
    }

    /// Calls `f(id, distance)` for every inserted point within `radius`
    /// of `p` (including coincident points), in cell order then
    /// insertion order within a cell.
    pub fn for_neighbors_within(
        &self,
        p: Point,
        radius: f64,
        positions: &[Point],
        mut f: impl FnMut(u32, f64),
    ) {
        let x0 = self.cell_x(p.x - radius);
        let x1 = self.cell_x(p.x + radius);
        let y0 = self.cell_y(p.y - radius);
        let y1 = self.cell_y(p.y + radius);
        let r2 = radius * radius;
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                let ids = self
                    .cells
                    .get(iy * self.nx + ix)
                    .map_or(EMPTY, Vec::as_slice);
                for &id in ids {
                    let Some(&q) = positions.get(id as usize) else {
                        continue;
                    };
                    let d2 = p.distance_squared(q);
                    if d2 <= r2 {
                        f(id, d2.sqrt());
                    }
                }
            }
        }
    }

    /// Visits the cells at Chebyshev distance exactly `r` from `(cx, cy)`
    /// that lie inside the grid, row-major.
    fn for_ring_cells(&self, cx: i64, cy: i64, r: i64, mut f: impl FnMut(&[u32])) {
        let visit = |ix: i64, iy: i64, f: &mut dyn FnMut(&[u32])| {
            if ix < 0 || iy < 0 || ix >= self.nx as i64 || iy >= self.ny as i64 {
                return;
            }
            if let Some(cell) = self.cells.get(iy as usize * self.nx + ix as usize) {
                f(cell);
            }
        };
        if r == 0 {
            visit(cx, cy, &mut f);
            return;
        }
        for ix in (cx - r)..=(cx + r) {
            visit(ix, cy - r, &mut f);
            visit(ix, cy + r, &mut f);
        }
        for iy in (cy - r + 1)..=(cy + r - 1) {
            visit(cx - r, iy, &mut f);
            visit(cx + r, iy, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cross_topo() -> Topology {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v2, v3, 1).unwrap();
        b.add_link(v0, v2, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn candidate_pairs_are_unique_and_cover_overlaps() {
        let topo = cross_topo();
        let grid = SegmentGrid::new(&topo);
        let mut pairs = Vec::new();
        grid.for_candidate_pairs(|i, j| pairs.push((i, j)));
        pairs.sort_unstable();
        let mut deduped = pairs.clone();
        deduped.dedup();
        assert_eq!(pairs, deduped, "canonical-cell rule must not duplicate");
        // The two diagonals overlap; each diagonal also overlaps the side.
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn for_candidates_dedups_across_cells() {
        // A single long link spans many cells of its own grid.
        let mut b = Topology::builder();
        let mut prev = b.add_node(Point::new(0.0, 0.0));
        for i in 1..8 {
            let n = b.add_node(Point::new(i as f64, (i % 2) as f64));
            b.add_link(prev, n, 1).unwrap();
            prev = n;
        }
        let far = b.add_node(Point::new(0.0, 100.0));
        b.add_link(prev, far, 1).unwrap();
        let topo = b.build().unwrap();
        let grid = SegmentGrid::new(&topo);
        let mut seen = LinkBitSet::with_link_capacity(topo.link_count());
        let mut hits = Vec::new();
        grid.for_candidates(
            Point::new(-10.0, -10.0),
            Point::new(110.0, 110.0),
            &mut seen,
            |l| hits.push(l),
        );
        hits.sort_unstable();
        assert_eq!(hits, topo.link_ids().collect::<Vec<_>>());
    }

    #[test]
    fn for_candidates_misses_disjoint_boxes() {
        let topo = cross_topo();
        let grid = SegmentGrid::new(&topo);
        let mut seen = LinkBitSet::with_link_capacity(topo.link_count());
        let mut hits = 0;
        grid.for_candidates(
            Point::new(50.0, 50.0),
            Point::new(60.0, 60.0),
            &mut seen,
            |_| hits += 1,
        );
        assert_eq!(hits, 0);
    }

    #[test]
    fn empty_topology_grid_is_total() {
        let topo = Topology::builder().build().unwrap();
        let grid = SegmentGrid::new(&topo);
        assert_eq!(grid.link_count(), 0);
        let mut seen = LinkBitSet::new();
        grid.for_candidates(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            &mut seen,
            |_| panic!("no links to report"),
        );
        grid.for_candidate_pairs(|_, _| panic!("no pairs to report"));
    }

    #[test]
    fn point_grid_nearest_matches_linear_scan() {
        let pts: Vec<Point> = (0..200)
            .map(|i| {
                let x = (i as f64 * 37.0) % 100.0;
                let y = (i as f64 * 53.0) % 100.0;
                Point::new(x, y)
            })
            .collect();
        let mut pg = PointGrid::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0), 7.0);
        for (i, &p) in pts.iter().enumerate() {
            pg.insert(i as u32, p);
        }
        for probe in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(99.9, 0.1),
            Point::new(-5.0, 120.0), // outside the declared bounds
        ] {
            let got = pg.nearest(probe, &pts).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|(ai, a), (bi, b)| {
                    probe
                        .distance_squared(**a)
                        .total_cmp(&probe.distance_squared(**b))
                        .then(ai.cmp(bi))
                })
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(got, want, "probe {probe}");
        }
        assert_eq!(
            PointGrid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 1.0)
                .nearest(Point::new(0.5, 0.5), &pts),
            None
        );
    }

    #[test]
    fn point_grid_radius_query_matches_linear_scan() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i as f64 * 13.0) % 40.0, (i as f64 * 29.0) % 40.0))
            .collect();
        let mut pg = PointGrid::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0), 5.0);
        for (i, &p) in pts.iter().enumerate() {
            pg.insert(i as u32, p);
        }
        let probe = Point::new(20.0, 20.0);
        let radius = 9.5;
        let mut got: Vec<u32> = Vec::new();
        pg.for_neighbors_within(probe, radius, &pts, |id, d| {
            assert!(d <= radius + 1e-9);
            got.push(id);
        });
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| probe.distance(**p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn grid_handles_coincident_points() {
        // All nodes at one point: zero-length segments, degenerate extent.
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(5.0, 5.0));
        let v1 = b.add_node(Point::new(5.0, 5.0));
        let v2 = b.add_node(Point::new(5.0, 5.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v1, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let grid = SegmentGrid::new(&topo);
        let mut pairs = 0;
        grid.for_candidate_pairs(|_, _| pairs += 1);
        assert_eq!(pairs, 1, "both degenerate boxes overlap");
    }
}
