//! Precomputed cross-link table.
//!
//! RTR's first phase must avoid selecting a link that geometrically crosses
//! certain other links (Constraints 1 and 2 in §III-C). The paper states
//! that "for each link, routers precompute the set of links across it"; this
//! module is that precomputation. A bounding-box prefilter keeps the O(m²)
//! construction fast for ISP-scale graphs (a few hundred links).

use crate::geometry::segments_cross;
use crate::graph::{LinkId, Topology};

/// Bits per crossing-mask word (matches [`crate::bitset::LinkBitSet`]).
const WORD_BITS: usize = 64;

/// For every link, the sorted list of links that properly cross it, plus a
/// flat per-link crossing *bitmask* (one stride of `u64` words per link)
/// so `crosses` is a single shift and the sweep's exclusion test is a
/// word-parallel AND against the packet's `cross_link` bitset.
///
/// Crossing is symmetric: `a ∈ crossings(b)` iff `b ∈ crossings(a)`.
///
/// # Examples
///
/// ```
/// use rtr_topology::{Topology, Point, CrossLinkTable, LinkId};
/// # fn main() -> Result<(), rtr_topology::TopologyError> {
/// let mut b = Topology::builder();
/// let v0 = b.add_node(Point::new(0.0, 0.0));
/// let v1 = b.add_node(Point::new(2.0, 2.0));
/// let v2 = b.add_node(Point::new(0.0, 2.0));
/// let v3 = b.add_node(Point::new(2.0, 0.0));
/// let d1 = b.add_link(v0, v1, 1)?;
/// let d2 = b.add_link(v2, v3, 1)?;
/// let topo = b.build()?;
/// let table = CrossLinkTable::new(&topo);
/// assert!(table.crosses(d1, d2));
/// assert_eq!(table.crossings_of(d1), &[d2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossLinkTable {
    crossings: Vec<Vec<LinkId>>,
    /// Flat row-major bitmask matrix: row `l` spans
    /// `masks[l * stride .. (l + 1) * stride]`, bit `b` of word `w` set
    /// iff link `w * 64 + b` crosses `l`.
    masks: Vec<u64>,
    /// Words per mask row: `ceil(link_count / 64)`.
    stride: usize,
    total_pairs: usize,
}

#[derive(Clone, Copy)]
struct Bbox {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

impl Bbox {
    fn overlaps(self, other: Bbox) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }
}

impl CrossLinkTable {
    /// Builds the table for every link of `topo`.
    pub fn new(topo: &Topology) -> Self {
        let m = topo.link_count();
        let mut crossings: Vec<Vec<LinkId>> = vec![Vec::new(); m];
        let segs: Vec<_> = topo.link_ids().map(|l| topo.segment(l)).collect();
        let boxes: Vec<Bbox> = segs
            .iter()
            .map(|s| Bbox {
                min_x: s.a.x.min(s.b.x),
                max_x: s.a.x.max(s.b.x),
                min_y: s.a.y.min(s.b.y),
                max_y: s.a.y.max(s.b.y),
            })
            .collect();
        let mut total_pairs = 0;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (i, (si, bi)) in segs.iter().zip(&boxes).enumerate() {
            for (dj, (sj, bj)) in segs.iter().zip(&boxes).enumerate().skip(i + 1) {
                if bi.overlaps(*bj) && segments_cross(*si, *sj) {
                    pairs.push((i, dj));
                    total_pairs += 1;
                }
            }
        }
        for (i, j) in pairs {
            if let Some(list) = crossings.get_mut(i) {
                list.push(LinkId(j as u32));
            }
            if let Some(list) = crossings.get_mut(j) {
                list.push(LinkId(i as u32));
            }
        }
        for list in &mut crossings {
            list.sort_unstable();
        }
        let stride = m.div_ceil(WORD_BITS);
        let mut masks = vec![0u64; m * stride];
        for (i, list) in crossings.iter().enumerate() {
            for other in list {
                if let Some(w) = masks.get_mut(i * stride + other.index() / WORD_BITS) {
                    *w |= 1u64 << (other.index() % WORD_BITS);
                }
            }
        }
        CrossLinkTable {
            crossings,
            masks,
            stride,
            total_pairs,
        }
    }

    /// The links properly crossing `l`, sorted by id. An out-of-range `l`
    /// crosses nothing.
    pub fn crossings_of(&self, l: LinkId) -> &[LinkId] {
        self.crossings.get(l.index()).map_or(&[], Vec::as_slice)
    }

    /// The crossing bitmask row of `l`: bit `b` of word `w` is set iff
    /// link `w * 64 + b` properly crosses `l`. Empty for out-of-range `l`.
    ///
    /// Intersecting this row with a
    /// [`LinkBitSet`](crate::bitset::LinkBitSet) answers "does `l` cross
    /// any link of the set?" in `stride` AND operations.
    pub fn crossing_mask(&self, l: LinkId) -> &[u64] {
        let start = l.index() * self.stride;
        self.masks
            .get(start..start + self.stride)
            .unwrap_or_default()
    }

    /// Returns true when links `a` and `b` properly cross (one bit test).
    pub fn crosses(&self, a: LinkId, b: LinkId) -> bool {
        self.crossing_mask(a)
            .get(b.index() / WORD_BITS)
            .is_some_and(|w| w & (1u64 << (b.index() % WORD_BITS)) != 0)
    }

    /// Returns true when `l` crosses no other link.
    pub fn is_cross_free(&self, l: LinkId) -> bool {
        self.crossings_of(l).is_empty()
    }

    /// Total number of crossing pairs in the topology. Zero means the
    /// embedding is planar as drawn.
    pub fn crossing_pair_count(&self) -> usize {
        self.total_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::Topology;

    #[test]
    fn planar_graph_has_no_crossings() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 0.0));
        let v2 = b.add_node(Point::new(1.0, 2.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v1, v2, 1).unwrap();
        b.add_link(v2, v0, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert_eq!(t.crossing_pair_count(), 0);
        for l in topo.link_ids() {
            assert!(t.is_cross_free(l));
        }
    }

    #[test]
    fn x_crossing_is_symmetric() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        let d1 = b.add_link(v0, v1, 1).unwrap();
        let d2 = b.add_link(v2, v3, 1).unwrap();
        // A non-crossing side link.
        let side = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert!(t.crosses(d1, d2));
        assert!(t.crosses(d2, d1));
        assert!(!t.crosses(d1, side));
        assert_eq!(t.crossing_pair_count(), 1);
    }

    #[test]
    fn shared_endpoint_links_do_not_cross() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 0.0));
        let v2 = b.add_node(Point::new(1.0, 2.0));
        let l1 = b.add_link(v0, v1, 1).unwrap();
        let l2 = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert!(!t.crosses(l1, l2));
    }

    #[test]
    fn mask_rows_agree_with_lists() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        let d1 = b.add_link(v0, v1, 1).unwrap();
        let d2 = b.add_link(v2, v3, 1).unwrap();
        let side = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        for l in topo.link_ids() {
            let row = t.crossing_mask(l);
            assert_eq!(row.len(), 1, "3 links fit one word");
            let from_row: Vec<LinkId> = topo.link_ids().filter(|&o| t.crosses(l, o)).collect();
            assert_eq!(from_row, t.crossings_of(l));
        }
        assert_eq!(t.crossing_mask(d1), &[1u64 << d2.index()]);
        assert_eq!(t.crossing_mask(side), &[0]);
        assert!(t.crossing_mask(LinkId(99)).is_empty());
    }

    #[test]
    fn multiple_crossings_recorded_sorted() {
        // One long horizontal link crossed by two verticals.
        let mut b = Topology::builder();
        let w = b.add_node(Point::new(-5.0, 0.0));
        let e = b.add_node(Point::new(5.0, 0.0));
        let n1 = b.add_node(Point::new(-2.0, 2.0));
        let s1 = b.add_node(Point::new(-2.0, -2.0));
        let n2 = b.add_node(Point::new(2.0, 2.0));
        let s2 = b.add_node(Point::new(2.0, -2.0));
        let horizontal = b.add_link(w, e, 1).unwrap();
        let vert1 = b.add_link(n1, s1, 1).unwrap();
        let vert2 = b.add_link(n2, s2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert_eq!(t.crossings_of(horizontal), &[vert1, vert2]);
        assert_eq!(t.crossings_of(vert1), &[horizontal]);
        assert_eq!(t.crossing_pair_count(), 2);
    }
}
