//! Precomputed cross-link table.
//!
//! RTR's first phase must avoid selecting a link that geometrically crosses
//! certain other links (Constraints 1 and 2 in §III-C). The paper states
//! that "for each link, routers precompute the set of links across it"; this
//! module is that precomputation.
//!
//! Two builders produce the identical table: a bbox-filtered all-pairs scan
//! ([`CrossLinkTable::new_all_pairs`], the O(m²) oracle, fine for the
//! paper's few-hundred-link topologies) and a uniform-grid spatial index
//! ([`CrossLinkTable::new_grid`], near-linear for the 100k-link scale
//! sweep). [`CrossLinkTable::new`] picks by link count. The pair sets are
//! proven identical by the `grid_index_matches_all_pairs` proptest.
//!
//! Storage is hybrid: per-link crossing *bitmask* rows (O(m²) bits, the
//! fastest exclusion probe) are materialized only up to
//! [`DENSE_MASK_MAX_LINKS`]; beyond that only the sorted crossing lists are
//! kept and [`CrossLinkTable::crosses_any_with`] walks the (short) list
//! with O(1) bitset membership per entry.

use crate::bitset::LinkBitSet;
use crate::geometry::segments_cross;
use crate::graph::{LinkId, Topology};
use crate::grid::{Bbox, SegmentGrid};
use crate::kernels::MaskKernel;

/// Bits per crossing-mask word (matches [`crate::bitset::LinkBitSet`]).
const WORD_BITS: usize = 64;

/// Largest link count for which [`CrossLinkTable::new`] uses the all-pairs
/// oracle builder; above it the grid index wins.
const ALL_PAIRS_MAX_LINKS: usize = 1024;

/// Largest link count for which dense per-link crossing-mask rows are
/// materialized (O(m²/8) bytes — 8 MiB at this cap). Larger tables keep
/// only the sorted crossing lists; the sweep's exclusion probe goes
/// through [`CrossLinkTable::crosses_any_with`], which handles both.
pub const DENSE_MASK_MAX_LINKS: usize = 8192;

/// For every link, the sorted list of links that properly cross it, plus —
/// in dense mode — a flat per-link crossing *bitmask* (one stride of `u64`
/// words per link) so `crosses` is a single shift and the sweep's exclusion
/// test is a word-parallel AND against the packet's `cross_link` bitset.
///
/// Crossing is symmetric: `a ∈ crossings(b)` iff `b ∈ crossings(a)`.
///
/// # Examples
///
/// ```
/// use rtr_topology::{Topology, Point, CrossLinkTable, LinkId};
/// # fn main() -> Result<(), rtr_topology::TopologyError> {
/// let mut b = Topology::builder();
/// let v0 = b.add_node(Point::new(0.0, 0.0));
/// let v1 = b.add_node(Point::new(2.0, 2.0));
/// let v2 = b.add_node(Point::new(0.0, 2.0));
/// let v3 = b.add_node(Point::new(2.0, 0.0));
/// let d1 = b.add_link(v0, v1, 1)?;
/// let d2 = b.add_link(v2, v3, 1)?;
/// let topo = b.build()?;
/// let table = CrossLinkTable::new(&topo);
/// assert!(table.crosses(d1, d2));
/// assert_eq!(table.crossings_of(d1), &[d2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossLinkTable {
    crossings: Vec<Vec<LinkId>>,
    /// Flat row-major bitmask matrix: row `l` spans
    /// `masks[l * stride .. (l + 1) * stride]`, bit `b` of word `w` set
    /// iff link `w * 64 + b` crosses `l`. Empty in sparse mode.
    masks: Vec<u64>,
    /// Words per mask row: `ceil(link_count / 64)` in dense mode, 0 in
    /// sparse mode.
    stride: usize,
    /// Whether dense mask rows were materialized (`link_count` at most
    /// [`DENSE_MASK_MAX_LINKS`]).
    dense: bool,
    total_pairs: usize,
}

impl CrossLinkTable {
    /// Builds the table for every link of `topo`: the all-pairs oracle for
    /// small topologies, the grid index beyond [`ALL_PAIRS_MAX_LINKS`]
    /// links. Both produce the identical table.
    pub fn new(topo: &Topology) -> Self {
        if topo.link_count() <= ALL_PAIRS_MAX_LINKS {
            Self::new_all_pairs(topo)
        } else {
            Self::new_grid(topo)
        }
    }

    /// The bbox-filtered all-pairs builder — O(m²) candidate pairs, kept
    /// as the oracle the grid builder is property-tested against.
    pub fn new_all_pairs(topo: &Topology) -> Self {
        let m = topo.link_count();
        let mut crossings: Vec<Vec<LinkId>> = vec![Vec::new(); m];
        let segs: Vec<_> = topo.link_ids().map(|l| topo.segment(l)).collect();
        let boxes: Vec<Bbox> = segs.iter().map(|s| Bbox::of_segment(*s)).collect();
        for (i, (si, bi)) in segs.iter().zip(&boxes).enumerate() {
            for (j, (sj, bj)) in segs.iter().zip(&boxes).enumerate().skip(i + 1) {
                if bi.overlaps(*bj) && segments_cross(*si, *sj) {
                    if let Some(list) = crossings.get_mut(i) {
                        list.push(LinkId(j as u32));
                    }
                    if let Some(list) = crossings.get_mut(j) {
                        list.push(LinkId(i as u32));
                    }
                }
            }
        }
        Self::finish(m, crossings)
    }

    /// The spatial-index builder: constructs a fresh [`SegmentGrid`] and
    /// delegates to [`with_grid`](Self::with_grid).
    pub fn new_grid(topo: &Topology) -> Self {
        Self::with_grid(topo, &SegmentGrid::new(topo))
    }

    /// Builds the table using an existing grid over `topo`'s segments
    /// (lets callers that already built one — e.g. for failure-scenario
    /// indexing — reuse it).
    pub fn with_grid(topo: &Topology, grid: &SegmentGrid) -> Self {
        let m = topo.link_count();
        debug_assert_eq!(grid.link_count(), m, "grid built over a different topology");
        let mut crossings: Vec<Vec<LinkId>> = vec![Vec::new(); m];
        let segs: Vec<_> = topo.link_ids().map(|l| topo.segment(l)).collect();
        grid.for_candidate_pairs(|i, j| {
            let crossed = match (segs.get(i), segs.get(j)) {
                (Some(si), Some(sj)) => segments_cross(*si, *sj),
                _ => false,
            };
            if crossed {
                if let Some(list) = crossings.get_mut(i) {
                    list.push(LinkId(j as u32));
                }
                if let Some(list) = crossings.get_mut(j) {
                    list.push(LinkId(i as u32));
                }
            }
        });
        Self::finish(m, crossings)
    }

    /// Shared finisher: sorts the per-link lists, derives the pair count,
    /// and materializes the dense mask rows when `m` is small enough.
    fn finish(m: usize, mut crossings: Vec<Vec<LinkId>>) -> Self {
        for list in &mut crossings {
            list.sort_unstable();
            debug_assert!(
                list.windows(2).all(|w| w.first() != w.last()),
                "builder reported a crossing pair twice"
            );
        }
        let total_pairs = crossings.iter().map(Vec::len).sum::<usize>() / 2;
        let dense = m <= DENSE_MASK_MAX_LINKS;
        let stride = if dense { m.div_ceil(WORD_BITS) } else { 0 };
        let mut masks = vec![0u64; if dense { m * stride } else { 0 }];
        if dense {
            for (i, list) in crossings.iter().enumerate() {
                for other in list {
                    if let Some(w) = masks.get_mut(i * stride + other.index() / WORD_BITS) {
                        *w |= 1u64 << (other.index() % WORD_BITS);
                    }
                }
            }
        }
        CrossLinkTable {
            crossings,
            masks,
            stride,
            dense,
            total_pairs,
        }
    }

    /// The links properly crossing `l`, sorted by id. An out-of-range `l`
    /// crosses nothing.
    pub fn crossings_of(&self, l: LinkId) -> &[LinkId] {
        self.crossings.get(l.index()).map_or(&[], Vec::as_slice)
    }

    /// The crossing bitmask row of `l`: bit `b` of word `w` is set iff
    /// link `w * 64 + b` properly crosses `l`. Empty for out-of-range `l`
    /// — and empty for *every* `l` when the table is in sparse mode
    /// (see [`has_dense_masks`](Self::has_dense_masks)); callers wanting a
    /// mode-independent probe use [`crosses_any_with`](Self::crosses_any_with).
    ///
    /// Intersecting this row with a
    /// [`LinkBitSet`](crate::bitset::LinkBitSet) answers "does `l` cross
    /// any link of the set?" in `stride` AND operations.
    pub fn crossing_mask(&self, l: LinkId) -> &[u64] {
        if !self.dense {
            return &[];
        }
        let start = l.index() * self.stride;
        self.masks
            .get(start..start + self.stride)
            .unwrap_or_default()
    }

    /// Whether dense per-link mask rows are materialized (tables over at
    /// most [`DENSE_MASK_MAX_LINKS`] links).
    pub fn has_dense_masks(&self) -> bool {
        self.dense
    }

    /// Returns true when links `a` and `b` properly cross: one bit test in
    /// dense mode, a binary search of `a`'s sorted crossing list otherwise.
    pub fn crosses(&self, a: LinkId, b: LinkId) -> bool {
        if self.dense {
            self.crossing_mask(a)
                .get(b.index() / WORD_BITS)
                .is_some_and(|w| w & (1u64 << (b.index() % WORD_BITS)) != 0)
        } else {
            self.crossings_of(a).binary_search(&b).is_ok()
        }
    }

    /// Returns true when `l` crosses any member of `set` — the phase-1
    /// exclusion probe (Constraints 1 and 2). In dense mode this is a
    /// word-parallel AND of `l`'s mask row against the set, run by
    /// `kernel`; in sparse mode it walks `l`'s sorted crossing list (short
    /// in realistic embeddings) with O(1) membership per entry.
    pub fn crosses_any_with(&self, kernel: MaskKernel, l: LinkId, set: &LinkBitSet) -> bool {
        if self.dense {
            set.intersects_words_with(kernel, self.crossing_mask(l))
        } else {
            self.crossings_of(l).iter().any(|&o| set.contains(o))
        }
    }

    /// Returns true when `l` crosses no other link.
    pub fn is_cross_free(&self, l: LinkId) -> bool {
        self.crossings_of(l).is_empty()
    }

    /// Total number of crossing pairs in the topology. Zero means the
    /// embedding is planar as drawn.
    pub fn crossing_pair_count(&self) -> usize {
        self.total_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::Topology;

    #[test]
    fn planar_graph_has_no_crossings() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 0.0));
        let v2 = b.add_node(Point::new(1.0, 2.0));
        b.add_link(v0, v1, 1).unwrap();
        b.add_link(v1, v2, 1).unwrap();
        b.add_link(v2, v0, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert_eq!(t.crossing_pair_count(), 0);
        for l in topo.link_ids() {
            assert!(t.is_cross_free(l));
        }
    }

    #[test]
    fn x_crossing_is_symmetric() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        let d1 = b.add_link(v0, v1, 1).unwrap();
        let d2 = b.add_link(v2, v3, 1).unwrap();
        // A non-crossing side link.
        let side = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert!(t.crosses(d1, d2));
        assert!(t.crosses(d2, d1));
        assert!(!t.crosses(d1, side));
        assert_eq!(t.crossing_pair_count(), 1);
    }

    #[test]
    fn shared_endpoint_links_do_not_cross() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 0.0));
        let v2 = b.add_node(Point::new(1.0, 2.0));
        let l1 = b.add_link(v0, v1, 1).unwrap();
        let l2 = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert!(!t.crosses(l1, l2));
    }

    #[test]
    fn mask_rows_agree_with_lists() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(2.0, 2.0));
        let v2 = b.add_node(Point::new(0.0, 2.0));
        let v3 = b.add_node(Point::new(2.0, 0.0));
        let d1 = b.add_link(v0, v1, 1).unwrap();
        let d2 = b.add_link(v2, v3, 1).unwrap();
        let side = b.add_link(v0, v2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert!(t.has_dense_masks());
        for l in topo.link_ids() {
            let row = t.crossing_mask(l);
            assert_eq!(row.len(), 1, "3 links fit one word");
            let from_row: Vec<LinkId> = topo.link_ids().filter(|&o| t.crosses(l, o)).collect();
            assert_eq!(from_row, t.crossings_of(l));
        }
        assert_eq!(t.crossing_mask(d1), &[1u64 << d2.index()]);
        assert_eq!(t.crossing_mask(side), &[0]);
        assert!(t.crossing_mask(LinkId(99)).is_empty());
    }

    #[test]
    fn multiple_crossings_recorded_sorted() {
        // One long horizontal link crossed by two verticals.
        let mut b = Topology::builder();
        let w = b.add_node(Point::new(-5.0, 0.0));
        let e = b.add_node(Point::new(5.0, 0.0));
        let n1 = b.add_node(Point::new(-2.0, 2.0));
        let s1 = b.add_node(Point::new(-2.0, -2.0));
        let n2 = b.add_node(Point::new(2.0, 2.0));
        let s2 = b.add_node(Point::new(2.0, -2.0));
        let horizontal = b.add_link(w, e, 1).unwrap();
        let vert1 = b.add_link(n1, s1, 1).unwrap();
        let vert2 = b.add_link(n2, s2, 1).unwrap();
        let topo = b.build().unwrap();
        let t = CrossLinkTable::new(&topo);
        assert_eq!(t.crossings_of(horizontal), &[vert1, vert2]);
        assert_eq!(t.crossings_of(vert1), &[horizontal]);
        assert_eq!(t.crossing_pair_count(), 2);
    }

    #[test]
    fn grid_builder_matches_all_pairs_on_a_dense_mesh() {
        let topo = crate::generate::isp_like(40, 180, 500.0, 99).unwrap();
        let oracle = CrossLinkTable::new_all_pairs(&topo);
        let grid = CrossLinkTable::new_grid(&topo);
        assert_eq!(oracle, grid);
        assert!(oracle.crossing_pair_count() > 0, "mesh should self-cross");
    }

    /// A sparse-mode table built over a synthetic segment soup: verifies
    /// list/binary-search probes and `crosses_any_with` agree with a
    /// dense table over the same geometry.
    #[test]
    fn sparse_mode_probes_agree_with_dense() {
        let topo = crate::generate::isp_like(60, 200, 800.0, 7).unwrap();
        let dense = CrossLinkTable::new_all_pairs(&topo);
        assert!(dense.has_dense_masks());
        // Force a sparse finish over the identical crossing lists.
        let sparse = CrossLinkTable {
            masks: Vec::new(),
            stride: 0,
            dense: false,
            crossings: dense.crossings.clone(),
            total_pairs: dense.total_pairs,
        };
        assert!(sparse.crossing_mask(LinkId(0)).is_empty());
        let mut set = LinkBitSet::with_link_capacity(topo.link_count());
        for l in topo.link_ids().take(40) {
            set.insert(l);
        }
        for a in topo.link_ids() {
            assert_eq!(
                sparse.crosses_any_with(MaskKernel::Scalar, a, &set),
                dense.crosses_any_with(MaskKernel::Scalar, a, &set),
                "crosses_any_with diverges at {a}"
            );
            for b in topo.link_ids() {
                assert_eq!(sparse.crosses(a, b), dense.crosses(a, b));
            }
        }
    }
}
