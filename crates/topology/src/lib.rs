//! Network topology substrate for the RTR reproduction.
//!
//! This crate provides everything below the routing layer for reproducing
//! *"Optimal Recovery from Large-Scale Failures in IP Networks"* (ICDCS
//! 2012):
//!
//! * [`geometry`] — points, segments, circles, polygons, proper-crossing
//!   tests, and the counterclockwise angular sweep used by RTR's right-hand
//!   rule;
//! * [`graph`] — the network model: routers with coordinates, links with
//!   (possibly asymmetric) positive costs;
//! * [`generate`] — deterministic topology generators: the ISP-like
//!   generator behind the synthetic Table II twins, plus Waxman,
//!   Barabási–Albert and hierarchical-PoP models for 10k–100k-node
//!   scale runs;
//! * [`grid`] — uniform-grid spatial indexes ([`SegmentGrid`],
//!   [`PointGrid`]) behind cross-link construction, region harvests and
//!   generator nearest-neighbor queries;
//! * [`isp`] — the paper's Table II topology inventory and a plain-text
//!   topology interchange format;
//! * [`failure`] — geographic failure regions, ground-truth failure
//!   scenarios, and the [`GraphView`] abstraction separating what the
//!   *simulator* knows from what a *router* knows;
//! * [`crosslinks`] — the precomputed link-crossing table required by
//!   Constraints 1 and 2 of RTR's first phase.
//!
//! # Quick start
//!
//! ```
//! use rtr_topology::{isp, Region, FailureScenario};
//!
//! // The paper's AS1239 twin: 52 routers, 84 links in a 2000×2000 area.
//! let topo = isp::profile("AS1239").unwrap().synthesize();
//! assert!(topo.is_connected());
//!
//! // A disaster: a circular area of radius 250 centred in the plane.
//! let region = Region::circle((1000.0, 1000.0), 250.0);
//! let scenario = FailureScenario::from_region(&topo, &region);
//!
//! // The simulator knows the ground truth; routers will have to discover it.
//! let failed = scenario.failed_node_count();
//! assert!(failed < topo.node_count());
//! ```

#![deny(missing_docs)]
// `unsafe` is forbidden everywhere except the AVX2 intrinsics confined to
// `kernels.rs`, which opt in locally when the `simd` feature is enabled.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]

pub mod bitset;
pub mod crosslinks;
pub mod failure;
pub mod generate;
pub mod geometry;
pub mod graph;
pub mod grid;
pub mod isp;
pub mod kernels;
pub mod pa;
pub mod timeline;

pub use bitset::LinkBitSet;
pub use crosslinks::CrossLinkTable;
pub use failure::{
    is_reachable, reachable_set, FailureScenario, FullView, GraphView, LinkMask, Region,
};
pub use generate::GenerateError;
pub use geometry::{Circle, Point, Polygon, Segment};
pub use graph::{Link, LinkId, NodeId, Topology, TopologyBuilder, TopologyError, MAX_IDS};
pub use grid::{PointGrid, SegmentGrid};
pub use kernels::MaskKernel;
pub use timeline::{Timeline, TimelineEvent};
