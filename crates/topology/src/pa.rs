//! Preferential-attachment ISP-like generator with a topology-independent
//! geometric embedding — the faithful analogue of the paper's setup.
//!
//! §IV-A places the Rocketfuel routers "randomly in a 2000 × 2000 area":
//! coordinates are drawn *independently of adjacency*. ISP router-level
//! graphs have heavy-tailed degree distributions, which preferential
//! attachment reproduces. [`isp_like_pa`] therefore grows a
//! preferential-attachment tree plus degree-biased extra links, and only
//! afterwards assigns uniform random coordinates.

use crate::generate::{random_positions, GenerateError};
use crate::graph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An ISP-like connected graph with exactly `n` nodes and `m` links whose
/// embedding is independent of its adjacency (matching the paper's random
/// node placement), deterministic in `seed`.
///
/// Construction: a preferential-attachment tree (each new node attaches to
/// an existing node with probability proportional to degree + 1), then the
/// remaining links between degree-biased random pairs. All costs are 1.
///
/// # Errors
///
/// Fails when `m < n − 1` or `m > n(n−1)/2` (same contract as
/// [`crate::generate::isp_like`]).
pub fn isp_like_pa(n: usize, m: usize, extent: f64, seed: u64) -> Result<Topology, GenerateError> {
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    if m + 1 < n {
        return Err(GenerateError::TooFewLinks { nodes: n, links: m });
    }
    if m > n * (n - 1) / 2 {
        return Err(GenerateError::TooManyLinks { nodes: n, links: m });
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a7e_51fe);
    let positions = random_positions(n, extent, &mut rng);
    let mut b = Topology::builder();
    for &p in &positions {
        b.add_node(p);
    }

    // Degree-weighted sampling support: a flat list with each node repeated
    // once per incident link end, plus one baseline entry per node.
    let mut degree_pool: Vec<u32> = vec![0];
    fn pick_weighted(pool: &[u32], rng: &mut StdRng) -> u32 {
        pool.get(rng.gen_range(0..pool.len())).copied().unwrap_or(0)
    }
    for i in 1..n {
        let pick = pick_weighted(&degree_pool, &mut rng);
        let target = if (pick as usize) < i {
            pick
        } else {
            rng.gen_range(0..i as u32)
        };
        b.add_link(NodeId(i as u32), NodeId(target), 1)?;
        degree_pool.push(i as u32);
        degree_pool.push(target);
        degree_pool.push(i as u32);
    }

    let mut remaining = m - (n - 1);
    let mut attempts = 0usize;
    let attempt_budget = 200 * m + 10_000;
    while remaining > 0 && attempts < attempt_budget {
        attempts += 1;
        let a = pick_weighted(&degree_pool, &mut rng);
        let c = rng.gen_range(0..n as u32);
        if a == c || b.has_link(NodeId(a), NodeId(c)) {
            continue;
        }
        b.add_link(NodeId(a), NodeId(c), 1)?;
        degree_pool.push(a);
        degree_pool.push(c);
        remaining -= 1;
    }
    // Dense graphs can exhaust degree-biased sampling; fill uniformly.
    if remaining > 0 {
        'fill: for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if remaining == 0 {
                    break 'fill;
                }
                if !b.has_link(NodeId(i), NodeId(j)) {
                    b.add_link(NodeId(i), NodeId(j), 1)?;
                    remaining -= 1;
                }
            }
        }
    }
    debug_assert_eq!(remaining, 0);

    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_and_connected() {
        for (n, m, seed) in [(58, 108, 209u64), (61, 486, 3549), (115, 148, 7018)] {
            let topo = isp_like_pa(n, m, 2000.0, seed).unwrap();
            assert_eq!(topo.node_count(), n);
            assert_eq!(topo.link_count(), m);
            assert!(topo.is_connected());
        }
    }

    #[test]
    fn deterministic() {
        let a = isp_like_pa(40, 90, 2000.0, 5).unwrap();
        let b = isp_like_pa(40, 90, 2000.0, 5).unwrap();
        for l in a.link_ids() {
            assert_eq!(a.link(l).endpoints(), b.link(l).endpoints());
        }
        for n in a.node_ids() {
            assert_eq!(a.position(n), b.position(n));
        }
    }

    #[test]
    fn has_hubs() {
        // Preferential attachment should produce at least one high-degree
        // hub, unlike a uniform random graph.
        let topo = isp_like_pa(80, 160, 2000.0, 11).unwrap();
        let max_degree = topo.node_ids().map(|n| topo.degree(n)).max().unwrap();
        assert!(max_degree >= 10, "max degree {max_degree} too small for PA");
    }

    #[test]
    fn rejects_bad_counts() {
        assert!(isp_like_pa(10, 5, 2000.0, 0).is_err());
        assert!(isp_like_pa(4, 7, 2000.0, 0).is_err());
        assert!(isp_like_pa(0, 0, 2000.0, 0).is_err());
    }

    #[test]
    fn dense_boundary() {
        let topo = isp_like_pa(6, 15, 100.0, 3).unwrap();
        assert_eq!(topo.link_count(), 15);
    }
}
