//! Failure models: geographic failure regions and concrete failure
//! scenarios (which nodes and links are down).
//!
//! The paper models a large-scale failure as a *continuous area* of
//! arbitrary shape and location: routers inside the area fail, and links
//! whose embeddings cross the area fail (§II-A). The evaluation instantiates
//! the area as a random circle (§IV-A), but RTR never learns the shape, so
//! the region abstraction here supports circles, polygons, and unions
//! (multiple simultaneous failure areas).

use crate::bitset::LinkBitSet;
use crate::geometry::{Circle, Point, Polygon, Segment};
use crate::graph::{LinkId, NodeId, Topology};
use crate::grid::SegmentGrid;

/// A geographic region used as a failure area.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A circular area (the paper's evaluation shape).
    Circle(Circle),
    /// An arbitrary simple polygon.
    Polygon(Polygon),
    /// The union of several areas — simultaneous failure areas.
    Union(Vec<Region>),
}

impl Region {
    /// Convenience constructor for a circular region.
    pub fn circle(center: impl Into<Point>, radius: f64) -> Self {
        Region::Circle(Circle::new(center.into(), radius))
    }

    /// Returns true when the point lies inside (or on) the region.
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Region::Circle(c) => c.contains(p),
            Region::Polygon(poly) => poly.contains(p),
            Region::Union(parts) => parts.iter().any(|r| r.contains(p)),
        }
    }

    /// Returns true when the segment touches the region anywhere.
    pub fn intersects_segment(&self, s: Segment) -> bool {
        match self {
            Region::Circle(c) => c.intersects_segment(s),
            Region::Polygon(poly) => poly.intersects_segment(s),
            Region::Union(parts) => parts.iter().any(|r| r.intersects_segment(s)),
        }
    }

    /// The axis-aligned bounding box `(min, max)` of the region. Anything
    /// the region touches lies inside it, so it is a sound prefilter for
    /// spatial-index queries. An empty union degenerates to a point box at
    /// the origin (it touches nothing).
    pub fn bounding_box(&self) -> (Point, Point) {
        match self {
            Region::Circle(c) => (
                Point::new(c.center.x - c.radius, c.center.y - c.radius),
                Point::new(c.center.x + c.radius, c.center.y + c.radius),
            ),
            Region::Polygon(poly) => {
                let mut min = Point::new(f64::INFINITY, f64::INFINITY);
                let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
                // Polygons have at least 3 vertices, so the fold is total.
                for v in poly.vertices() {
                    min = Point::new(min.x.min(v.x), min.y.min(v.y));
                    max = Point::new(max.x.max(v.x), max.y.max(v.y));
                }
                (min, max)
            }
            Region::Union(parts) => {
                let mut min = Point::new(f64::INFINITY, f64::INFINITY);
                let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
                for r in parts {
                    let (lo, hi) = r.bounding_box();
                    min = Point::new(min.x.min(lo.x), min.y.min(lo.y));
                    max = Point::new(max.x.max(hi.x), max.y.max(hi.y));
                }
                if min.x > max.x {
                    (Point::new(0.0, 0.0), Point::new(0.0, 0.0))
                } else {
                    (min, max)
                }
            }
        }
    }
}

impl From<Circle> for Region {
    fn from(c: Circle) -> Self {
        Region::Circle(c)
    }
}

impl From<Polygon> for Region {
    fn from(p: Polygon) -> Self {
        Region::Polygon(p)
    }
}

/// A *view* of which elements of a topology are currently usable.
///
/// Routing and recovery algorithms are written against this trait so they
/// can run on the ground-truth failure state ([`FailureScenario`]), on a
/// router's partial knowledge ([`LinkMask`]), or on the intact network
/// ([`FullView`]).
pub trait GraphView {
    /// Returns true when node `n` has not failed in this view.
    fn is_node_live(&self, n: NodeId) -> bool;

    /// Returns true when link `l` itself has not failed in this view
    /// (regardless of its endpoints).
    fn is_link_live(&self, l: LinkId) -> bool;

    /// A link is *usable* when it is live and both endpoints are live.
    fn is_link_usable(&self, topo: &Topology, l: LinkId) -> bool {
        let (a, b) = topo.link(l).endpoints();
        self.is_link_live(l) && self.is_node_live(a) && self.is_node_live(b)
    }
}

/// References delegate, so `&dyn GraphView` (and `&&V`) satisfy the same
/// generic bounds as the view itself — this is what lets an object-safe
/// scheme API hand a `&dyn GraphView` down into generic routing code.
impl<V: GraphView + ?Sized> GraphView for &V {
    fn is_node_live(&self, n: NodeId) -> bool {
        (**self).is_node_live(n)
    }
    fn is_link_live(&self, l: LinkId) -> bool {
        (**self).is_link_live(l)
    }
    fn is_link_usable(&self, topo: &Topology, l: LinkId) -> bool {
        (**self).is_link_usable(topo, l)
    }
}

/// The intact network: everything is live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullView;

impl GraphView for FullView {
    fn is_node_live(&self, _n: NodeId) -> bool {
        true
    }
    fn is_link_live(&self, _l: LinkId) -> bool {
        true
    }
}

/// Ground truth of a failure event: the sets of failed nodes and links.
///
/// This is what the *simulation* knows. No router ever sees it directly; a
/// router only observes that some neighbors are unreachable (it cannot tell
/// a node failure from a link failure — §I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureScenario {
    failed_nodes: Vec<bool>,
    /// Failed links as a word-parallel bitset; `is_link_failed` is the
    /// single hottest query of the test-case harvest.
    failed_link_bits: LinkBitSet,
    /// Number of links in the topology this scenario was sized for; ids at
    /// or beyond it are rejected by [`fail_link`](Self::fail_link).
    link_count: usize,
}

impl FailureScenario {
    /// A scenario with no failures, sized for `topo`.
    pub fn none(topo: &Topology) -> Self {
        FailureScenario {
            failed_nodes: vec![false; topo.node_count()],
            failed_link_bits: LinkBitSet::with_link_capacity(topo.link_count()),
            link_count: topo.link_count(),
        }
    }

    /// Applies a geographic region to the topology: nodes inside the region
    /// fail; links whose segments touch the region fail.
    pub fn from_region(topo: &Topology, region: &Region) -> Self {
        let mut s = Self::none(topo);
        for n in topo.node_ids() {
            if region.contains(topo.position(n)) {
                s.fail_node(n);
            }
        }
        for l in topo.link_ids() {
            if region.intersects_segment(topo.segment(l)) {
                s.fail_link(l);
            }
        }
        s
    }

    /// Like [`from_region`](Self::from_region), but testing only the links
    /// a [`SegmentGrid`] nominates for the region's bounding box instead
    /// of every link — result-identical (every link touching the region
    /// has a bounding box overlapping the region's), and near-linear in
    /// scenario count at scale because the per-scenario work is
    /// proportional to the links *near* the region, not all of them.
    pub fn from_region_indexed(topo: &Topology, region: &Region, grid: &SegmentGrid) -> Self {
        let mut s = Self::none(topo);
        for n in topo.node_ids() {
            if region.contains(topo.position(n)) {
                s.fail_node(n);
            }
        }
        let (min, max) = region.bounding_box();
        let mut seen = LinkBitSet::with_link_capacity(topo.link_count());
        let mut failed: Vec<LinkId> = Vec::new();
        grid.for_candidates(min, max, &mut seen, |l| {
            if region.intersects_segment(topo.segment(l)) {
                failed.push(l);
            }
        });
        for l in failed {
            s.fail_link(l);
        }
        s
    }

    /// A scenario in which exactly one link fails (Theorem 3's setting).
    /// An out-of-range `l` fails nothing.
    pub fn single_link(topo: &Topology, l: LinkId) -> Self {
        let mut s = Self::none(topo);
        s.fail_link(l);
        s
    }

    /// Builds a scenario from explicit failed-node and failed-link sets.
    /// Out-of-range ids are ignored.
    pub fn from_parts(
        topo: &Topology,
        nodes: impl IntoIterator<Item = NodeId>,
        links: impl IntoIterator<Item = LinkId>,
    ) -> Self {
        let mut s = Self::none(topo);
        for n in nodes {
            s.fail_node(n);
        }
        for l in links {
            s.fail_link(l);
        }
        s
    }

    /// Marks node `n` as failed (no-op when out of range).
    fn fail_node(&mut self, n: NodeId) {
        if let Some(f) = self.failed_nodes.get_mut(n.index()) {
            *f = true;
        }
    }

    /// Marks link `l` as failed (no-op when out of range).
    fn fail_link(&mut self, l: LinkId) {
        if l.index() < self.link_count {
            self.failed_link_bits.insert(l);
        }
    }

    /// Merges another scenario into this one (union of failures).
    pub fn merge(&mut self, other: &FailureScenario) {
        assert_eq!(self.failed_nodes.len(), other.failed_nodes.len());
        assert_eq!(self.link_count, other.link_count);
        for (a, b) in self.failed_nodes.iter_mut().zip(&other.failed_nodes) {
            *a |= *b;
        }
        self.failed_link_bits.union_with(&other.failed_link_bits);
    }

    /// Returns true when node `n` failed.
    pub fn is_node_failed(&self, n: NodeId) -> bool {
        self.failed_nodes.get(n.index()).copied().unwrap_or(false)
    }

    /// Returns true when link `l` failed (the link itself, not its ends).
    #[inline]
    pub fn is_link_failed(&self, l: LinkId) -> bool {
        self.failed_link_bits.contains(l)
    }

    /// Ids of all failed nodes.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed_nodes
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Ids of all failed links, ascending.
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed_link_bits.iter()
    }

    /// The failed-link set as a bitset (for word-parallel queries).
    pub fn failed_link_set(&self) -> &LinkBitSet {
        &self.failed_link_bits
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.failed_nodes.iter().filter(|&&f| f).count()
    }

    /// Number of failed links (not counting links with failed endpoints).
    pub fn failed_link_count(&self) -> usize {
        self.failed_link_bits.len()
    }

    /// The set of *ground-truth unusable* links: failed links plus links
    /// incident to failed nodes. This is `E2` in Theorem 2's notation.
    pub fn unusable_links<'a>(&'a self, topo: &'a Topology) -> impl Iterator<Item = LinkId> + 'a {
        topo.link_ids().filter(|&l| !self.is_link_usable(topo, l))
    }

    /// From `from`'s local point of view, is the neighbor across `l`
    /// reachable? A router only observes this boolean per neighbor; it
    /// cannot tell whether the link or the neighbor failed (§II-A).
    pub fn is_neighbor_reachable(&self, topo: &Topology, from: NodeId, l: LinkId) -> bool {
        debug_assert!(topo.link(l).is_incident_to(from));
        self.is_link_usable(topo, l)
    }
}

impl GraphView for FailureScenario {
    fn is_node_live(&self, n: NodeId) -> bool {
        !self.is_node_failed(n)
    }
    fn is_link_live(&self, l: LinkId) -> bool {
        !self.is_link_failed(l)
    }
}

/// A router's *believed* view: the full topology minus a set of links it has
/// learned (or assumes) to be dead. Nodes are never removed — a router
/// cannot distinguish node failures from link failures, so its recomputation
/// removes links only (§III-B, second phase).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkMask {
    removed: Vec<bool>,
}

impl LinkMask {
    /// A mask removing nothing, sized for `topo`.
    pub fn none(topo: &Topology) -> Self {
        LinkMask {
            removed: vec![false; topo.link_count()],
        }
    }

    /// Builds a mask removing the given links (out-of-range ids are ignored).
    pub fn from_links(topo: &Topology, links: impl IntoIterator<Item = LinkId>) -> Self {
        let mut m = Self::none(topo);
        for l in links {
            m.remove(l);
        }
        m
    }

    /// Clears the mask for reuse over `topo`: every link usable again.
    /// Retains capacity, so a mask held across iterations never reallocates
    /// on same-sized topologies.
    pub fn reset(&mut self, topo: &Topology) {
        self.removed.clear();
        self.removed.resize(topo.link_count(), false);
    }

    /// Marks link `l` as removed (no-op when out of range).
    pub fn remove(&mut self, l: LinkId) {
        if let Some(r) = self.removed.get_mut(l.index()) {
            *r = true;
        }
    }

    /// Marks link `l` as usable again — the repair counterpart of
    /// [`remove`](Self::remove), applied by timeline `LinkUp` events.
    /// No-op when out of range or when the link was never removed.
    pub fn restore(&mut self, l: LinkId) {
        if let Some(r) = self.removed.get_mut(l.index()) {
            *r = false;
        }
    }

    /// Iterates the removed links in ascending id order.
    pub fn removed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.removed
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| LinkId(i as u32))
    }

    /// Returns true when link `l` is removed in this mask.
    pub fn is_removed(&self, l: LinkId) -> bool {
        self.removed.get(l.index()).copied().unwrap_or(false)
    }

    /// Number of removed links.
    pub fn removed_count(&self) -> usize {
        self.removed.iter().filter(|&&r| r).count()
    }
}

impl GraphView for LinkMask {
    fn is_node_live(&self, _n: NodeId) -> bool {
        true
    }
    fn is_link_live(&self, l: LinkId) -> bool {
        !self.is_removed(l)
    }
}

/// Computes the set of nodes reachable from `from` using only usable links.
///
/// Returns a boolean vector indexed by node id. If `from` itself is not live
/// in the view, the result is all-false.
pub fn reachable_set(topo: &Topology, view: &impl GraphView, from: NodeId) -> Vec<bool> {
    let mut seen = vec![false; topo.node_count()];
    if !view.is_node_live(from) {
        return seen;
    }
    let mut stack = vec![from];
    if let Some(s) = seen.get_mut(from.index()) {
        *s = true;
    }
    while let Some(n) = stack.pop() {
        for &(nbr, l) in topo.neighbors(n) {
            if view.is_link_usable(topo, l) {
                if let Some(s) = seen.get_mut(nbr.index()) {
                    if !*s {
                        *s = true;
                        stack.push(nbr);
                    }
                }
            }
        }
    }
    seen
}

/// Returns true when `to` is reachable from `from` over usable links.
pub fn is_reachable(topo: &Topology, view: &impl GraphView, from: NodeId, to: NodeId) -> bool {
    reachable_set(topo, view, from)
        .get(to.index())
        .copied()
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;

    /// A 3×3 grid with unit spacing; node (r, c) has id 3r + c.
    fn grid3() -> Topology {
        let mut b = Topology::builder();
        for r in 0..3 {
            for c in 0..3 {
                b.add_node(Point::new(c as f64, r as f64));
            }
        }
        for r in 0..3u32 {
            for c in 0..3u32 {
                let id = NodeId(3 * r + c);
                if c + 1 < 3 {
                    b.add_link(id, NodeId(3 * r + c + 1), 1).unwrap();
                }
                if r + 1 < 3 {
                    b.add_link(id, NodeId(3 * (r + 1) + c), 1).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn region_circle_contains() {
        let r = Region::circle((1.0, 1.0), 0.5);
        assert!(r.contains(Point::new(1.2, 1.2)));
        assert!(!r.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn region_union_is_or() {
        let u = Region::Union(vec![
            Region::circle((0.0, 0.0), 0.4),
            Region::circle((2.0, 2.0), 0.4),
        ]);
        assert!(u.contains(Point::new(0.1, 0.1)));
        assert!(u.contains(Point::new(2.1, 2.1)));
        assert!(!u.contains(Point::new(1.0, 1.0)));
        assert!(u.intersects_segment(Segment::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.0))));
    }

    #[test]
    fn scenario_from_region_kills_center_of_grid() {
        let topo = grid3();
        // Circle around the center node (1,1).
        let region = Region::circle((1.0, 1.0), 0.3);
        let s = FailureScenario::from_region(&topo, &region);
        assert!(s.is_node_failed(NodeId(4)));
        assert_eq!(s.failed_node_count(), 1);
        // All four links incident to the center cross the circle.
        for nbr in [1u32, 3, 5, 7] {
            let l = topo.link_between(NodeId(4), NodeId(nbr)).unwrap();
            assert!(s.is_link_failed(l));
        }
        // A border link does not.
        let border = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        assert!(!s.is_link_failed(border));
    }

    #[test]
    fn link_crossing_region_fails_even_with_live_endpoints() {
        let mut b = Topology::builder();
        let v0 = b.add_node(Point::new(0.0, 0.0));
        let v1 = b.add_node(Point::new(10.0, 0.0));
        b.add_link(v0, v1, 1).unwrap();
        let topo = b.build().unwrap();
        let s = FailureScenario::from_region(&topo, &Region::circle((5.0, 0.0), 1.0));
        assert!(!s.is_node_failed(v0));
        assert!(!s.is_node_failed(v1));
        assert!(s.is_link_failed(LinkId(0)));
        assert!(!s.is_link_usable(&topo, LinkId(0)));
    }

    #[test]
    fn region_bounding_boxes_cover_their_shapes() {
        let (min, max) = Region::circle((3.0, 4.0), 2.0).bounding_box();
        assert_eq!((min.x, min.y, max.x, max.y), (1.0, 2.0, 5.0, 6.0));

        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(2.0, 5.0),
        ])
        .unwrap();
        let (min, max) = Region::from(poly).bounding_box();
        assert_eq!((min.x, min.y, max.x, max.y), (0.0, 0.0, 4.0, 5.0));

        let union = Region::Union(vec![
            Region::circle((0.0, 0.0), 1.0),
            Region::circle((10.0, 10.0), 1.0),
        ]);
        let (min, max) = union.bounding_box();
        assert_eq!((min.x, min.y, max.x, max.y), (-1.0, -1.0, 11.0, 11.0));

        let (min, max) = Region::Union(Vec::new()).bounding_box();
        assert_eq!((min.x, min.y, max.x, max.y), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn from_region_indexed_matches_scan() {
        let topo = crate::generate::isp_like(60, 140, 2000.0, 44).unwrap();
        let grid = SegmentGrid::new(&topo);
        for (cx, cy, r) in [
            (1000.0, 1000.0, 250.0),
            (0.0, 0.0, 400.0),
            (1999.0, 40.0, 10.0),
            (1000.0, 1000.0, 5000.0), // swallows everything
        ] {
            let region = Region::circle((cx, cy), r);
            let scan = FailureScenario::from_region(&topo, &region);
            let indexed = FailureScenario::from_region_indexed(&topo, &region, &grid);
            assert_eq!(scan, indexed, "circle ({cx},{cy}) r={r}");
        }
        // A union region through the same path.
        let union = Region::Union(vec![
            Region::circle((200.0, 200.0), 150.0),
            Region::circle((1800.0, 1800.0), 150.0),
        ]);
        assert_eq!(
            FailureScenario::from_region(&topo, &union),
            FailureScenario::from_region_indexed(&topo, &union, &grid)
        );
    }

    #[test]
    fn single_link_scenario() {
        let topo = grid3();
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let s = FailureScenario::single_link(&topo, l);
        assert_eq!(s.failed_link_count(), 1);
        assert_eq!(s.failed_node_count(), 0);
        assert!(s.is_link_failed(l));
    }

    #[test]
    fn unusable_links_include_failed_endpoints() {
        let topo = grid3();
        let s = FailureScenario::from_parts(&topo, [NodeId(4)], []);
        let unusable: Vec<LinkId> = s.unusable_links(&topo).collect();
        assert_eq!(unusable.len(), 4); // the 4 links incident to the center
        for l in unusable {
            assert!(topo.link(l).is_incident_to(NodeId(4)));
        }
    }

    #[test]
    fn merge_unions_failures() {
        let topo = grid3();
        let mut a = FailureScenario::from_parts(&topo, [NodeId(0)], []);
        let b = FailureScenario::from_parts(&topo, [NodeId(8)], [LinkId(0)]);
        a.merge(&b);
        assert!(a.is_node_failed(NodeId(0)));
        assert!(a.is_node_failed(NodeId(8)));
        assert!(a.is_link_failed(LinkId(0)));
    }

    #[test]
    fn neighbor_reachability_view() {
        let topo = grid3();
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let s = FailureScenario::single_link(&topo, l);
        assert!(!s.is_neighbor_reachable(&topo, NodeId(0), l));
        let l2 = topo.link_between(NodeId(0), NodeId(3)).unwrap();
        assert!(s.is_neighbor_reachable(&topo, NodeId(0), l2));

        // Node failure makes the neighbor unreachable over a live link.
        let s2 = FailureScenario::from_parts(&topo, [NodeId(1)], []);
        assert!(!s2.is_neighbor_reachable(&topo, NodeId(0), l));
    }

    #[test]
    fn reachability_with_partition() {
        let topo = grid3();
        // Kill the entire middle column: nodes 1, 4, 7.
        let s = FailureScenario::from_parts(&topo, [NodeId(1), NodeId(4), NodeId(7)], []);
        assert!(is_reachable(&topo, &s, NodeId(0), NodeId(6)));
        assert!(!is_reachable(&topo, &s, NodeId(0), NodeId(2)));
        assert!(is_reachable(&topo, &s, NodeId(2), NodeId(8)));
    }

    #[test]
    fn reachability_from_failed_node_is_empty() {
        let topo = grid3();
        let s = FailureScenario::from_parts(&topo, [NodeId(0)], []);
        let seen = reachable_set(&topo, &s, NodeId(0));
        assert!(seen.iter().all(|&x| !x));
    }

    #[test]
    fn full_view_everything_live() {
        let topo = grid3();
        for n in topo.node_ids() {
            assert!(FullView.is_node_live(n));
        }
        for l in topo.link_ids() {
            assert!(FullView.is_link_usable(&topo, l));
        }
        assert!(is_reachable(&topo, &FullView, NodeId(0), NodeId(8)));
    }

    #[test]
    fn link_mask_removes_links_only() {
        let topo = grid3();
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let mask = LinkMask::from_links(&topo, [l]);
        assert!(mask.is_removed(l));
        assert_eq!(mask.removed_count(), 1);
        assert!(!mask.is_link_usable(&topo, l));
        assert!(mask.is_node_live(NodeId(0)));
        // Still reachable around the grid.
        assert!(is_reachable(&topo, &mask, NodeId(0), NodeId(1)));
    }

    #[test]
    fn scenario_iterators() {
        let topo = grid3();
        let s = FailureScenario::from_parts(&topo, [NodeId(2), NodeId(5)], [LinkId(1)]);
        assert_eq!(
            s.failed_nodes().collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(5)]
        );
        assert_eq!(s.failed_links().collect::<Vec<_>>(), vec![LinkId(1)]);
    }
}
