//! Deterministic topology generators.
//!
//! The paper evaluates on eight Rocketfuel-derived ISP topologies whose raw
//! data is not redistributable. [`isp_like`] produces *synthetic twins*: a
//! geometric graph with an exact node and link count, grown as a
//! nearest-neighbor tree (reproducing the tree branches of sparse ASes like
//! AS7018) plus distance-biased shortcut links (reproducing the dense meshes
//! of ASes like AS3549). All generators are deterministic given their seed.
//!
//! Regular generators (grid, ring, path, star) back unit tests where the
//! right answer is known by inspection; [`gabriel`] produces a planar graph
//! for exercising RTR's planar-graph forwarding rule in isolation.

use crate::geometry::Point;
use crate::graph::{NodeId, Topology, TopologyError};
use crate::grid::PointGrid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors from topology generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// Fewer links requested than needed for connectivity (n − 1).
    TooFewLinks {
        /// Requested node count.
        nodes: usize,
        /// Requested link count.
        links: usize,
    },
    /// More links requested than a simple graph on n nodes can hold.
    TooManyLinks {
        /// Requested node count.
        nodes: usize,
        /// Requested link count.
        links: usize,
    },
    /// Fewer than the minimum number of nodes for the requested shape.
    TooFewNodes {
        /// Minimum nodes the shape requires.
        need: usize,
        /// Nodes actually requested.
        got: usize,
    },
    /// The underlying topology construction failed.
    Topology(TopologyError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::TooFewLinks { nodes, links } => {
                write!(
                    f,
                    "{links} links cannot connect {nodes} nodes (need at least {})",
                    nodes.saturating_sub(1)
                )
            }
            GenerateError::TooManyLinks { nodes, links } => {
                write!(
                    f,
                    "{links} links exceed the simple-graph maximum for {nodes} nodes"
                )
            }
            GenerateError::TooFewNodes { need, got } => {
                write!(f, "need at least {need} nodes, got {got}")
            }
            GenerateError::Topology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenerateError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for GenerateError {
    fn from(e: TopologyError) -> Self {
        GenerateError::Topology(e)
    }
}

/// Places `n` points uniformly at random in the square `[0, extent]²`.
pub fn random_positions(n: usize, extent: f64, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect()
}

/// An ISP-like connected geometric graph with exactly `n` nodes and `m`
/// links, embedded in `[0, extent]²`, deterministic in `seed`.
///
/// Construction: uniform node placement; a nearest-neighbor attachment tree
/// for connectivity; then the remaining `m − (n − 1)` links chosen among all
/// unused pairs in ascending order of jittered Euclidean distance, biasing
/// toward short, geographically plausible links. All link costs are 1
/// (hop-count routing, matching the paper's evaluation).
///
/// # Errors
///
/// Fails when `m < n − 1` (cannot connect) or `m` exceeds `n(n−1)/2`.
pub fn isp_like(n: usize, m: usize, extent: f64, seed: u64) -> Result<Topology, GenerateError> {
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    if m + 1 < n {
        return Err(GenerateError::TooFewLinks { nodes: n, links: m });
    }
    if m > n * (n - 1) / 2 {
        return Err(GenerateError::TooManyLinks { nodes: n, links: m });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let positions = random_positions(n, extent, &mut rng);

    let mut b = Topology::builder();
    for &p in &positions {
        b.add_node(p);
    }

    // Nearest-neighbor attachment tree: node i joins its nearest predecessor.
    let mut placed: Vec<Point> = Vec::with_capacity(n);
    for (i, &pi) in positions.iter().enumerate() {
        let nearest = placed
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, c)| {
                pi.distance_squared(**a)
                    .total_cmp(&pi.distance_squared(**c))
            })
            .map(|(idx, _)| idx);
        if let Some(nearest) = nearest {
            b.add_link(NodeId(i as u32), NodeId(nearest as u32), 1)?;
        }
        placed.push(pi);
    }

    // Remaining links: all unused pairs, shortest (jittered) first.
    let mut remaining = m - (n - 1);
    if remaining > 0 {
        let mut candidates: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
        for (i, &pi) in positions.iter().enumerate() {
            for (j, &pj) in positions.iter().enumerate().skip(i + 1) {
                if !b.has_link(NodeId(i as u32), NodeId(j as u32)) {
                    let d = pi.distance(pj);
                    let jitter = 1.0 + rng.gen_range(0.0..0.75);
                    candidates.push((d * jitter, i as u32, j as u32));
                }
            }
        }
        candidates.sort_by(|a, c| a.0.total_cmp(&c.0));
        for (_, i, j) in candidates {
            if remaining == 0 {
                break;
            }
            b.add_link(NodeId(i), NodeId(j), 1)?;
            remaining -= 1;
        }
    }
    debug_assert_eq!(remaining, 0);

    Ok(b.build()?)
}

/// A rows × cols grid with unit link costs and `spacing` between nodes.
/// Node `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
// Grid construction is structurally valid by enumeration: every link pair is
// unique and every coordinate finite, so the builder cannot fail.
#[allow(clippy::expect_used)]
pub fn grid(rows: usize, cols: usize, spacing: f64) -> Topology {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = Topology::builder();
    for r in 0..rows {
        for c in 0..cols {
            b.add_node(Point::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let id = NodeId((r * cols + c) as u32);
            if c + 1 < cols {
                b.add_link(id, NodeId((r * cols + c + 1) as u32), 1)
                    .expect("grid links are unique");
            }
            if r + 1 < rows {
                b.add_link(id, NodeId(((r + 1) * cols + c) as u32), 1)
                    .expect("grid links are unique");
            }
        }
    }
    b.build().expect("grid coordinates are finite")
}

/// A cycle of `n` nodes placed on a circle of the given `radius`.
///
/// # Errors
///
/// Fails when `n < 3`.
pub fn ring(n: usize, radius: f64) -> Result<Topology, GenerateError> {
    if n < 3 {
        return Err(GenerateError::TooFewNodes { need: 3, got: n });
    }
    let mut b = Topology::builder();
    for i in 0..n {
        let theta = std::f64::consts::TAU * i as f64 / n as f64;
        b.add_node(Point::new(radius * theta.cos(), radius * theta.sin()));
    }
    for i in 0..n {
        b.add_link(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 1)?;
    }
    Ok(b.build()?)
}

/// A path of `n` nodes along the x-axis with the given `spacing`.
///
/// # Errors
///
/// Fails when `n == 0`.
pub fn path(n: usize, spacing: f64) -> Result<Topology, GenerateError> {
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    let mut b = Topology::builder();
    for i in 0..n {
        b.add_node(Point::new(i as f64 * spacing, 0.0));
    }
    for i in 1..n {
        b.add_link(NodeId((i - 1) as u32), NodeId(i as u32), 1)?;
    }
    Ok(b.build()?)
}

/// A star: node 0 at the center, `n − 1` leaves on a circle around it.
///
/// # Errors
///
/// Fails when `n < 2`.
pub fn star(n: usize, radius: f64) -> Result<Topology, GenerateError> {
    if n < 2 {
        return Err(GenerateError::TooFewNodes { need: 2, got: n });
    }
    let mut b = Topology::builder();
    b.add_node(Point::new(0.0, 0.0));
    for i in 1..n {
        let theta = std::f64::consts::TAU * (i - 1) as f64 / (n - 1) as f64;
        b.add_node(Point::new(radius * theta.cos(), radius * theta.sin()));
        b.add_link(NodeId(0), NodeId(i as u32), 1)?;
    }
    Ok(b.build()?)
}

/// A random geometric *tree*: each node joins its nearest predecessor.
/// Produces the free branches the paper observes in AS7018.
///
/// # Errors
///
/// Fails when `n == 0`.
pub fn random_tree(n: usize, extent: f64, seed: u64) -> Result<Topology, GenerateError> {
    isp_like(n, n.saturating_sub(1), extent, seed)
}

/// The Gabriel graph of `n` random points: an edge `(u, v)` exists iff no
/// third point lies inside the circle with diameter `uv`. Gabriel graphs are
/// planar and connected — the natural fixture for RTR's planar forwarding
/// rule (§III-B).
///
/// # Errors
///
/// Fails when `n == 0`.
pub fn gabriel(n: usize, extent: f64, seed: u64) -> Result<Topology, GenerateError> {
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = random_positions(n, extent, &mut rng);
    let mut b = Topology::builder();
    for &p in &positions {
        b.add_node(p);
    }
    for (i, &pi) in positions.iter().enumerate() {
        for (j, &pj) in positions.iter().enumerate().skip(i + 1) {
            let mid = Point::new((pi.x + pj.x) / 2.0, (pi.y + pj.y) / 2.0);
            let r2 = pi.distance_squared(pj) / 4.0;
            let blocked = positions
                .iter()
                .enumerate()
                .any(|(k, &pk)| k != i && k != j && mid.distance_squared(pk) < r2 - 1e-12);
            if !blocked {
                b.add_link(NodeId(i as u32), NodeId(j as u32), 1)?;
            }
        }
    }
    Ok(b.build()?)
}

/// Grows a nearest-predecessor attachment tree over `positions` using a
/// [`PointGrid`], adding the links to `b` — the scalable counterpart of
/// [`isp_like`]'s O(n²) scan. Returns the grid with every point inserted,
/// for reuse by the caller's extra-link stage.
fn nn_tree(
    b: &mut crate::graph::TopologyBuilder,
    positions: &[Point],
    extent: f64,
) -> Result<PointGrid, GenerateError> {
    // Roughly one point per cell keeps both insertion and the expanding-
    // ring nearest search O(1) amortized for uniform placements.
    let cell = (extent / (positions.len() as f64).sqrt()).max(f64::MIN_POSITIVE);
    let mut pg = PointGrid::new(Point::new(0.0, 0.0), Point::new(extent, extent), cell);
    for (i, &p) in positions.iter().enumerate() {
        if let Some(nearest) = pg.nearest(p, positions) {
            b.add_link(NodeId(i as u32), NodeId(nearest), 1)?;
        }
        pg.insert(i as u32, p);
    }
    Ok(pg)
}

/// A Waxman random graph with exactly `n` nodes and `m` links in
/// `[0, extent]²`, deterministic in `seed`.
///
/// Connectivity comes from a nearest-predecessor tree; the remaining
/// `m − (n − 1)` links are drawn by weighted sampling over *near* pairs
/// with the Waxman probability weight `β · exp(−d / (α · L))` (`L` = the
/// extent diagonal), so short links dominate for small `α` exactly as in
/// Waxman's model. Candidate pairs are enumerated through a [`PointGrid`]
/// radius query whose radius widens geometrically until enough candidates
/// exist — near-linear for the sparse densities (`m ≈ 2n`) the scale
/// sweep uses, never worse than the all-pairs scan.
///
/// # Errors
///
/// Fails when `n == 0`, `m < n − 1`, or `m` exceeds `n(n−1)/2`.
///
/// # Panics
///
/// Panics when `extent` is not positive and finite or `alpha`/`beta` are
/// outside `(0, 1]`.
pub fn waxman(
    n: usize,
    m: usize,
    extent: f64,
    alpha: f64,
    beta: f64,
    seed: u64,
) -> Result<Topology, GenerateError> {
    assert!(
        extent > 0.0 && extent.is_finite(),
        "extent must be positive and finite"
    );
    assert!(
        alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0,
        "Waxman parameters must lie in (0, 1]"
    );
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    if m + 1 < n {
        return Err(GenerateError::TooFewLinks { nodes: n, links: m });
    }
    if m > n * (n - 1) / 2 {
        return Err(GenerateError::TooManyLinks { nodes: n, links: m });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let positions = random_positions(n, extent, &mut rng);
    let mut b = Topology::builder();
    for &p in &positions {
        b.add_node(p);
    }
    let pg = nn_tree(&mut b, &positions, extent)?;

    let remaining = m - (n - 1);
    if remaining > 0 {
        let diag = extent * std::f64::consts::SQRT_2;
        // Radius sized so the expected near-pair count is ~8× the links
        // still needed (uniform density: pairs within r ≈ n²πr²/(2A)).
        let target = (8 * remaining).max(64) as f64;
        let mut radius =
            (extent / n as f64) * (2.0 * target / std::f64::consts::PI).sqrt().max(1.0);
        radius = radius.clamp(extent / (n as f64).sqrt(), diag);
        loop {
            let mut cands: Vec<(f64, u32, u32)> = Vec::new();
            for (i, &pi) in positions.iter().enumerate() {
                pg.for_neighbors_within(pi, radius, &positions, |j, d| {
                    if j as usize > i && !b.has_link(NodeId(i as u32), NodeId(j)) {
                        let w = beta * (-d / (alpha * diag)).exp();
                        // Exponential race: each candidate draws an arrival
                        // time with rate `w`; the `remaining` earliest win.
                        // Equivalent to weighted sampling without
                        // replacement, deterministic in the draw order.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let key = -(1.0 - u).ln() / w;
                        cands.push((key, i as u32, j));
                    }
                });
            }
            if cands.len() >= remaining || radius >= diag {
                cands.sort_by(|a, c| a.0.total_cmp(&c.0).then(a.1.cmp(&c.1)).then(a.2.cmp(&c.2)));
                for &(_, i, j) in cands.iter().take(remaining) {
                    b.add_link(NodeId(i), NodeId(j), 1)?;
                }
                debug_assert!(cands.len() >= remaining, "diag radius enumerates all pairs");
                break;
            }
            radius = (radius * 2.0).min(diag);
        }
    }
    Ok(b.build()?)
}

/// A Barabási–Albert preferential-attachment graph with coordinates:
/// `n` nodes placed uniformly in `[0, extent]²`, seeded with a clique on
/// the first `attach + 1` nodes, then each new node linking to `attach`
/// distinct degree-proportional targets. Deterministic in `seed`;
/// produces the heavy-tailed degree distributions of real AS graphs
/// (total links: `attach·(attach+1)/2 + (n − attach − 1)·attach`).
///
/// Construction is O(n·attach) via the repeated-endpoint pool (each link
/// endpoint appears once per degree, so uniform pool sampling *is*
/// preferential attachment).
///
/// # Errors
///
/// Fails when `attach == 0` (cannot connect) or `n < attach + 1`.
///
/// # Panics
///
/// Panics when `extent` is not positive and finite.
pub fn barabasi_albert(
    n: usize,
    attach: usize,
    extent: f64,
    seed: u64,
) -> Result<Topology, GenerateError> {
    assert!(
        extent > 0.0 && extent.is_finite(),
        "extent must be positive and finite"
    );
    if n == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    if attach == 0 {
        return Err(GenerateError::TooFewLinks { nodes: n, links: 0 });
    }
    if n < attach + 1 {
        return Err(GenerateError::TooFewNodes {
            need: attach + 1,
            got: n,
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let positions = random_positions(n, extent, &mut rng);
    let mut b = Topology::builder();
    for &p in &positions {
        b.add_node(p);
    }

    // Endpoint pool: node id repeated once per unit of degree.
    let m0 = attach + 1;
    let mut pool: Vec<u32> = Vec::with_capacity(2 * (m0 * (m0 - 1) / 2 + (n - m0) * attach));
    for i in 0..m0 {
        for j in (i + 1)..m0 {
            b.add_link(NodeId(i as u32), NodeId(j as u32), 1)?;
            pool.push(i as u32);
            pool.push(j as u32);
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(attach);
    for v in m0..n {
        chosen.clear();
        // Rejection-sample `attach` distinct targets; at least `m0 > attach`
        // distinct nodes are in the pool, so this terminates.
        while chosen.len() < attach {
            let t = pool.get(rng.gen_range(0..pool.len())).copied();
            if let Some(t) = t {
                if t != v as u32 && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for &t in &chosen {
            b.add_link(NodeId(v as u32), NodeId(t), 1)?;
            pool.push(v as u32);
            pool.push(t);
        }
    }
    Ok(b.build()?)
}

/// A two-level hierarchical PoP ISP: `pops` points of presence placed
/// uniformly in `[0, extent]²`, each with two core routers and
/// `access_per_pop` access routers dual-homed to both cores; PoPs are
/// joined by a redundant backbone (a nearest-predecessor tree over the
/// primary cores plus a parallel tree over the secondary cores), so no
/// single backbone link partitions the network. Deterministic in `seed`.
///
/// Node ids are PoP-major: PoP `p` owns ids
/// `p·(2 + access_per_pop) ..` in order `[core0, core1, access…]`, with
/// totals `pops·(2 + access_per_pop)` nodes and
/// `pops·(1 + 2·access_per_pop) + 2·(pops − 1)` links.
///
/// # Errors
///
/// Fails when `pops == 0`.
///
/// # Panics
///
/// Panics when `extent` is not positive and finite.
pub fn hierarchical_isp(
    pops: usize,
    access_per_pop: usize,
    extent: f64,
    seed: u64,
) -> Result<Topology, GenerateError> {
    assert!(
        extent > 0.0 && extent.is_finite(),
        "extent must be positive and finite"
    );
    if pops == 0 {
        return Err(GenerateError::TooFewNodes { need: 1, got: 0 });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = random_positions(pops, extent, &mut rng);
    // PoP footprint well under the typical inter-PoP spacing.
    let pop_radius = extent / (pops as f64).sqrt() / 4.0;

    let per_pop = 2 + access_per_pop;
    let mut b = Topology::builder();
    let core0 = |p: usize| NodeId((p * per_pop) as u32);
    let core1 = |p: usize| NodeId((p * per_pop + 1) as u32);
    for &c in &centers {
        let mut jittered = |spread: f64| {
            Point::new(
                c.x + rng.gen_range(-spread..spread),
                c.y + rng.gen_range(-spread..spread),
            )
        };
        let c0 = jittered(pop_radius / 4.0);
        let c1 = jittered(pop_radius / 4.0);
        let mut access = Vec::with_capacity(access_per_pop);
        for _ in 0..access_per_pop {
            access.push(jittered(pop_radius));
        }
        let i0 = b.add_node(c0);
        let i1 = b.add_node(c1);
        b.add_link(i0, i1, 1)?;
        for a in access {
            let ia = b.add_node(a);
            b.add_link(ia, i0, 1)?;
            b.add_link(ia, i1, 1)?;
        }
    }

    // Redundant backbone: nearest-predecessor tree over PoP centers,
    // mirrored across both core planes.
    let cell = (extent / (pops as f64).sqrt()).max(f64::MIN_POSITIVE);
    let mut pg = PointGrid::new(Point::new(0.0, 0.0), Point::new(extent, extent), cell);
    for (p, &c) in centers.iter().enumerate() {
        if let Some(q) = pg.nearest(c, &centers) {
            b.add_link(core0(p), core0(q as usize), 1)?;
            b.add_link(core1(p), core1(q as usize), 1)?;
        }
        pg.insert(p as u32, c);
    }
    Ok(b.build()?)
}

/// Rebuilds `topo` with fresh random per-direction link costs drawn
/// uniformly from `min..=max` (deterministic in `seed`). Geometry and
/// adjacency are preserved.
///
/// The paper's evaluation uses hop-count routing (all costs 1), but its
/// model explicitly allows asymmetric costs (§II-A: "links can be
/// asymmetric, i.e. c(i,j) ≠ c(j,i)"); this reweighting exercises that
/// generality in tests and sensitivity experiments.
///
/// # Panics
///
/// Panics if `min` is zero or `min > max` (costs must be positive).
// Rebuilding an already-validated topology cannot fail: the source graph is
// simple with finite coordinates, and the new costs are checked >= 1 above.
#[allow(clippy::expect_used)]
pub fn with_random_costs(topo: &Topology, min: u32, max: u32, seed: u64) -> Topology {
    assert!(
        min >= 1 && min <= max,
        "cost range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC057);
    let mut b = Topology::builder();
    for n in topo.node_ids() {
        b.add_node(topo.position(n));
    }
    for l in topo.link_ids() {
        let (x, y) = topo.link(l).endpoints();
        let cab = rng.gen_range(min..=max);
        let cba = rng.gen_range(min..=max);
        b.add_link_asymmetric(x, y, cab, cba)
            .expect("source topology is a valid simple graph");
    }
    b.build().expect("source topology has finite coordinates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_like_exact_counts_and_connected() {
        let topo = isp_like(58, 108, 2000.0, 209).unwrap();
        assert_eq!(topo.node_count(), 58);
        assert_eq!(topo.link_count(), 108);
        assert!(topo.is_connected());
    }

    #[test]
    fn isp_like_is_deterministic() {
        let a = isp_like(30, 60, 2000.0, 42).unwrap();
        let b = isp_like(30, 60, 2000.0, 42).unwrap();
        for n in a.node_ids() {
            assert_eq!(a.position(n), b.position(n));
        }
        for l in a.link_ids() {
            assert_eq!(a.link(l).endpoints(), b.link(l).endpoints());
        }
    }

    #[test]
    fn isp_like_different_seeds_differ() {
        let a = isp_like(30, 60, 2000.0, 1).unwrap();
        let b = isp_like(30, 60, 2000.0, 2).unwrap();
        let same = a.node_ids().all(|n| a.position(n) == b.position(n));
        assert!(!same);
    }

    #[test]
    fn isp_like_dense_graph() {
        // As dense as AS3549: 61 nodes, 486 links.
        let topo = isp_like(61, 486, 2000.0, 3549).unwrap();
        assert_eq!(topo.link_count(), 486);
        assert!(topo.is_connected());
    }

    #[test]
    fn isp_like_rejects_impossible_counts() {
        assert!(matches!(
            isp_like(10, 8, 2000.0, 0),
            Err(GenerateError::TooFewLinks { .. })
        ));
        assert!(matches!(
            isp_like(5, 11, 2000.0, 0),
            Err(GenerateError::TooManyLinks { .. })
        ));
        assert!(matches!(
            isp_like(0, 0, 2000.0, 0),
            Err(GenerateError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn isp_like_complete_graph_boundary() {
        let topo = isp_like(5, 10, 100.0, 7).unwrap();
        assert_eq!(topo.link_count(), 10);
        for n in topo.node_ids() {
            assert_eq!(topo.degree(n), 4);
        }
    }

    #[test]
    fn grid_structure() {
        let topo = grid(3, 4, 10.0);
        assert_eq!(topo.node_count(), 12);
        // 3 rows × 3 horizontal + 2 rows of 4 vertical = 9 + 8 = 17.
        assert_eq!(topo.link_count(), 17);
        assert!(topo.is_connected());
        assert!(topo.is_planar_embedding());
        // Corner degree 2, edge degree 3, interior degree 4.
        assert_eq!(topo.degree(NodeId(0)), 2);
        assert_eq!(topo.degree(NodeId(1)), 3);
        assert_eq!(topo.degree(NodeId(5)), 4);
    }

    #[test]
    fn ring_structure() {
        let topo = ring(6, 100.0).unwrap();
        assert_eq!(topo.node_count(), 6);
        assert_eq!(topo.link_count(), 6);
        for n in topo.node_ids() {
            assert_eq!(topo.degree(n), 2);
        }
        assert!(ring(2, 10.0).is_err());
    }

    #[test]
    fn path_structure() {
        let topo = path(5, 10.0).unwrap();
        assert_eq!(topo.link_count(), 4);
        assert_eq!(topo.degree(NodeId(0)), 1);
        assert_eq!(topo.degree(NodeId(2)), 2);
        assert!(path(0, 1.0).is_err());
    }

    #[test]
    fn star_structure() {
        let topo = star(7, 50.0).unwrap();
        assert_eq!(topo.degree(NodeId(0)), 6);
        for i in 1..7 {
            assert_eq!(topo.degree(NodeId(i)), 1);
        }
        assert!(star(1, 1.0).is_err());
    }

    #[test]
    fn random_tree_is_a_tree() {
        let topo = random_tree(40, 2000.0, 11).unwrap();
        assert_eq!(topo.link_count(), 39);
        assert!(topo.is_connected());
    }

    #[test]
    fn gabriel_is_planar_and_connected() {
        let topo = gabriel(40, 2000.0, 5).unwrap();
        assert!(topo.is_connected(), "Gabriel graphs are connected");
        assert!(topo.is_planar_embedding(), "Gabriel graphs are planar");
    }

    #[test]
    fn with_random_costs_preserves_structure() {
        let base = isp_like(20, 45, 2000.0, 3).unwrap();
        let weighted = with_random_costs(&base, 1, 10, 7);
        assert_eq!(weighted.node_count(), base.node_count());
        assert_eq!(weighted.link_count(), base.link_count());
        for l in base.link_ids() {
            assert_eq!(weighted.link(l).endpoints(), base.link(l).endpoints());
            let (a, _) = weighted.link(l).endpoints();
            let c = weighted.cost_from(l, a);
            assert!((1..=10).contains(&c));
        }
        // Deterministic.
        let again = with_random_costs(&base, 1, 10, 7);
        for l in base.link_ids() {
            let (a, b2) = base.link(l).endpoints();
            assert_eq!(again.cost_from(l, a), weighted.cost_from(l, a));
            assert_eq!(again.cost_from(l, b2), weighted.cost_from(l, b2));
        }
    }

    #[test]
    #[should_panic(expected = "cost range")]
    fn with_random_costs_rejects_zero_min() {
        let base = isp_like(5, 6, 100.0, 1).unwrap();
        let _ = with_random_costs(&base, 0, 5, 1);
    }

    #[test]
    fn generate_error_display() {
        let e = GenerateError::TooFewLinks {
            nodes: 10,
            links: 3,
        };
        assert_eq!(
            e.to_string(),
            "3 links cannot connect 10 nodes (need at least 9)"
        );
    }

    /// Byte-identical reruns and seed sensitivity, shared by the scale
    /// generators.
    fn assert_deterministic(
        gen: impl Fn(u64) -> Result<Topology, GenerateError>,
        seed_a: u64,
        seed_b: u64,
    ) {
        let a = gen(seed_a).unwrap();
        let b = gen(seed_a).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.link_count(), b.link_count());
        for n in a.node_ids() {
            assert_eq!(a.position(n), b.position(n));
        }
        for l in a.link_ids() {
            assert_eq!(a.link(l).endpoints(), b.link(l).endpoints());
        }
        let c = gen(seed_b).unwrap();
        let same_positions = a.node_count() == c.node_count()
            && a.node_ids().all(|n| a.position(n) == c.position(n));
        assert!(!same_positions, "seeds {seed_a} and {seed_b} agree");
    }

    #[test]
    fn waxman_exact_counts_and_connected() {
        let topo = waxman(200, 420, 2000.0, 0.15, 0.6, 11).unwrap();
        assert_eq!(topo.node_count(), 200);
        assert_eq!(topo.link_count(), 420);
        assert!(topo.is_connected());
    }

    #[test]
    fn waxman_is_deterministic() {
        assert_deterministic(|s| waxman(80, 170, 2000.0, 0.2, 0.5, s), 5, 6);
    }

    #[test]
    fn waxman_prefers_short_links() {
        // Small alpha strongly penalizes distance, so the mean link length
        // should be well under the uniform-random-pair expectation (~0.52
        // of the diagonal).
        let topo = waxman(150, 400, 1000.0, 0.05, 1.0, 9).unwrap();
        let mean = topo
            .link_ids()
            .map(|l| topo.segment(l).length())
            .sum::<f64>()
            / topo.link_count() as f64;
        assert!(
            mean < 0.25 * 1000.0 * std::f64::consts::SQRT_2,
            "mean link length {mean} is not short-biased"
        );
    }

    #[test]
    fn waxman_rejects_impossible_counts() {
        assert!(matches!(
            waxman(10, 8, 100.0, 0.2, 0.5, 0),
            Err(GenerateError::TooFewLinks { .. })
        ));
        assert!(matches!(
            waxman(5, 11, 100.0, 0.2, 0.5, 0),
            Err(GenerateError::TooManyLinks { .. })
        ));
        assert!(matches!(
            waxman(0, 0, 100.0, 0.2, 0.5, 0),
            Err(GenerateError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn barabasi_albert_counts_and_connected() {
        let (n, attach) = (300, 2);
        let topo = barabasi_albert(n, attach, 2000.0, 17).unwrap();
        assert_eq!(topo.node_count(), n);
        assert_eq!(topo.link_count(), 3 + (n - 3) * attach);
        assert!(topo.is_connected());
    }

    #[test]
    fn barabasi_albert_is_deterministic() {
        assert_deterministic(|s| barabasi_albert(120, 2, 2000.0, s), 3, 4);
    }

    #[test]
    fn barabasi_albert_has_heavy_tail() {
        // Preferential attachment concentrates degree: the busiest router
        // should far exceed the mean degree (2·attach ≈ 4).
        let topo = barabasi_albert(500, 2, 2000.0, 23).unwrap();
        let max_deg = topo.node_ids().map(|n| topo.degree(n)).max().unwrap();
        assert!(max_deg >= 12, "max degree {max_deg} is not heavy-tailed");
    }

    #[test]
    fn barabasi_albert_rejects_bad_parameters() {
        assert!(matches!(
            barabasi_albert(0, 2, 100.0, 0),
            Err(GenerateError::TooFewNodes { .. })
        ));
        assert!(matches!(
            barabasi_albert(10, 0, 100.0, 0),
            Err(GenerateError::TooFewLinks { .. })
        ));
        assert!(matches!(
            barabasi_albert(2, 2, 100.0, 0),
            Err(GenerateError::TooFewNodes { need: 3, got: 2 })
        ));
    }

    #[test]
    fn hierarchical_isp_structure() {
        let (pops, access) = (12, 6);
        let topo = hierarchical_isp(pops, access, 2000.0, 31).unwrap();
        assert_eq!(topo.node_count(), pops * (2 + access));
        assert_eq!(topo.link_count(), pops * (1 + 2 * access) + 2 * (pops - 1));
        assert!(topo.is_connected());
        // Every access router is dual-homed: degree exactly 2.
        for p in 0..pops {
            for a in 0..access {
                let id = NodeId((p * (2 + access) + 2 + a) as u32);
                assert_eq!(topo.degree(id), 2);
            }
        }
    }

    #[test]
    fn hierarchical_isp_survives_any_backbone_link() {
        // The mirrored backbone means no single inter-PoP link partitions
        // the graph: removing either plane's copy leaves the other.
        let topo = hierarchical_isp(8, 3, 2000.0, 47).unwrap();
        let mut mask = crate::failure::LinkMask::none(&topo);
        for l in topo.link_ids() {
            mask.reset(&topo);
            mask.remove(l);
            let reach = crate::failure::reachable_set(&topo, &mask, NodeId(0));
            assert!(reach.iter().all(|&r| r), "link {l:?} is a cut edge");
        }
    }

    #[test]
    fn hierarchical_isp_is_deterministic() {
        assert_deterministic(|s| hierarchical_isp(10, 5, 2000.0, s), 8, 9);
    }

    #[test]
    fn hierarchical_isp_rejects_zero_pops() {
        assert!(matches!(
            hierarchical_isp(0, 4, 100.0, 0),
            Err(GenerateError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn single_pop_isp_has_no_backbone() {
        let topo = hierarchical_isp(1, 4, 500.0, 2).unwrap();
        assert_eq!(topo.node_count(), 6);
        assert_eq!(topo.link_count(), 1 + 2 * 4);
        assert!(topo.is_connected());
    }
}
