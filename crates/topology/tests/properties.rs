//! Property-based tests for the topology substrate.

use proptest::prelude::*;
use rtr_topology::geometry::{
    ccw_angle, segments_cross, segments_intersect, Circle, Point, Segment,
};
use rtr_topology::{generate, CrossLinkTable, FailureScenario, LinkId, NodeId, Region};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..2000.0f64, 0.0..2000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn distance_is_symmetric_and_nonnegative(a in arb_point(), b in arb_point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn crossing_is_symmetric(s1 in arb_segment(), s2 in arb_segment()) {
        prop_assert_eq!(segments_cross(s1, s2), segments_cross(s2, s1));
        prop_assert_eq!(segments_intersect(s1, s2), segments_intersect(s2, s1));
    }

    #[test]
    fn crossing_implies_intersection(s1 in arb_segment(), s2 in arb_segment()) {
        if segments_cross(s1, s2) {
            prop_assert!(segments_intersect(s1, s2));
        }
    }

    #[test]
    fn segment_never_crosses_itself(s in arb_segment()) {
        prop_assert!(!segments_cross(s, s));
    }

    #[test]
    fn ccw_angle_in_half_open_range(
        a in (-1.0..1.0f64, -1.0..1.0f64),
        b in (-1.0..1.0f64, -1.0..1.0f64),
    ) {
        prop_assume!(a.0.abs() + a.1.abs() > 1e-6 && b.0.abs() + b.1.abs() > 1e-6);
        let angle = ccw_angle(a, b);
        prop_assert!(angle > 0.0 && angle <= std::f64::consts::TAU + 1e-9);
    }

    #[test]
    fn ccw_angles_of_opposite_orders_sum_to_tau(
        a in (-1.0..1.0f64, -1.0..1.0f64),
        b in (-1.0..1.0f64, -1.0..1.0f64),
    ) {
        prop_assume!(a.0.abs() + a.1.abs() > 1e-6 && b.0.abs() + b.1.abs() > 1e-6);
        // Unless the directions are collinear, angle(a→b) + angle(b→a) = 2π.
        let fwd = ccw_angle(a, b);
        let back = ccw_angle(b, a);
        let tau = std::f64::consts::TAU;
        let sum = fwd + back;
        prop_assert!((sum - tau).abs() < 1e-6 || (sum - 2.0 * tau).abs() < 1e-6);
    }

    #[test]
    fn circle_segment_test_matches_distance(c in arb_point(), r in 1.0..500.0f64, s in arb_segment()) {
        let circle = Circle::new(c, r);
        prop_assert_eq!(
            circle.intersects_segment(s),
            s.distance_to_point(c) <= r
        );
    }

    #[test]
    fn isp_like_always_connected_with_exact_counts(
        n in 2..40usize,
        extra in 0..60usize,
        seed in 0..1000u64,
    ) {
        let max = n * (n - 1) / 2;
        let m = (n - 1 + extra).min(max);
        let topo = generate::isp_like(n, m, 2000.0, seed).unwrap();
        prop_assert_eq!(topo.node_count(), n);
        prop_assert_eq!(topo.link_count(), m);
        prop_assert!(topo.is_connected());
    }

    #[test]
    fn crosslink_table_symmetric(n in 4..25usize, seed in 0..200u64) {
        let max = n * (n - 1) / 2;
        let m = (2 * n).min(max);
        let topo = generate::isp_like(n, m, 2000.0, seed).unwrap();
        let table = CrossLinkTable::new(&topo);
        for a in topo.link_ids() {
            for &b in table.crossings_of(a) {
                prop_assert!(table.crosses(b, a));
                prop_assert!(a != b);
                // Crossing links never share an endpoint.
                let (a1, a2) = topo.link(a).endpoints();
                let lb = topo.link(b);
                prop_assert!(!lb.is_incident_to(a1) && !lb.is_incident_to(a2));
            }
        }
    }

    #[test]
    fn grid_index_matches_all_pairs(
        n in 4..30usize,
        extra in 0..40usize,
        seed in 0..400u64,
    ) {
        // Snapping the ISP-like layout to a coarse integer lattice forces
        // collinear overlaps, shared endpoints, and T-junctions — exactly
        // the degeneracies where a sloppy spatial index would diverge from
        // the all-pairs oracle.
        let max = n * (n - 1) / 2;
        let m = (n - 1 + extra).min(max);
        let smooth = generate::isp_like(n, m, 2000.0, seed).unwrap();
        for &lattice in &[0.0f64, 250.0] {
            let mut b = rtr_topology::Topology::builder();
            for node in smooth.node_ids() {
                let p = smooth.position(node);
                if lattice > 0.0 {
                    b.add_node(Point::new(
                        (p.x / lattice).round() * lattice,
                        (p.y / lattice).round() * lattice,
                    ));
                } else {
                    b.add_node(p);
                }
            }
            for l in smooth.link_ids() {
                let (a, z) = smooth.link(l).endpoints();
                b.add_link(a, z, 1).unwrap();
            }
            let topo = b.build().unwrap();
            let oracle = CrossLinkTable::new_all_pairs(&topo);
            let grid = CrossLinkTable::new_grid(&topo);
            prop_assert_eq!(&oracle, &grid);
        }
    }

    #[test]
    fn region_failure_is_monotone_in_radius(
        seed in 0..200u64,
        cx in 0.0..2000.0f64,
        cy in 0.0..2000.0f64,
        r1 in 20.0..300.0f64,
        grow in 1.0..200.0f64,
    ) {
        let topo = generate::isp_like(30, 60, 2000.0, seed).unwrap();
        let small = FailureScenario::from_region(&topo, &Region::circle((cx, cy), r1));
        let big = FailureScenario::from_region(&topo, &Region::circle((cx, cy), r1 + grow));
        // Everything failed under the small region also fails under the big one.
        for n in topo.node_ids() {
            if small.is_node_failed(n) {
                prop_assert!(big.is_node_failed(n));
            }
        }
        for l in topo.link_ids() {
            if small.is_link_failed(l) {
                prop_assert!(big.is_link_failed(l));
            }
        }
    }

    #[test]
    fn node_in_region_fails_all_incident_links(
        seed in 0..100u64,
        cx in 0.0..2000.0f64,
        cy in 0.0..2000.0f64,
        r in 20.0..400.0f64,
    ) {
        let topo = generate::isp_like(25, 50, 2000.0, seed).unwrap();
        let s = FailureScenario::from_region(&topo, &Region::circle((cx, cy), r));
        for n in topo.node_ids() {
            if s.is_node_failed(n) {
                for &(_, l) in topo.neighbors(n) {
                    // The link's segment touches the region at the failed
                    // endpoint, so it must be marked failed too.
                    prop_assert!(s.is_link_failed(l));
                }
            }
        }
    }
}

#[test]
fn union_region_failure_equals_merged_scenarios() {
    let topo = generate::isp_like(30, 70, 2000.0, 9).unwrap();
    let r1 = Region::circle((500.0, 500.0), 200.0);
    let r2 = Region::circle((1500.0, 1500.0), 150.0);
    let both = FailureScenario::from_region(&topo, &Region::Union(vec![r1.clone(), r2.clone()]));
    let mut merged = FailureScenario::from_region(&topo, &r1);
    merged.merge(&FailureScenario::from_region(&topo, &r2));
    for n in topo.node_ids() {
        assert_eq!(both.is_node_failed(n), merged.is_node_failed(n));
    }
    for l in topo.link_ids() {
        assert_eq!(both.is_link_failed(l), merged.is_link_failed(l));
    }
}

#[test]
fn table2_twin_ids_fit_packet_headers() {
    for (p, topo) in rtr_topology::isp::all_twins() {
        assert!(topo.node_count() <= u16::MAX as usize, "{}", p.name);
        assert!(topo.link_count() <= u16::MAX as usize, "{}", p.name);
        // Spot-check id round-trips.
        let n = NodeId((topo.node_count() - 1) as u32);
        assert_eq!(n.index(), topo.node_count() - 1);
        let l = LinkId((topo.link_count() - 1) as u32);
        assert_eq!(l.index(), topo.link_count() - 1);
    }
}
