//! Property-based tests pinning [`LinkBitSet`] to a plain `Vec<LinkId>`
//! reference model: word-parallel membership must be observationally
//! identical to the linear scans it replaced.

use proptest::prelude::*;
use rtr_topology::{LinkBitSet, LinkId, MaskKernel};

/// Every mask kernel compiled into this build.
fn all_kernels() -> Vec<MaskKernel> {
    vec![
        MaskKernel::Scalar,
        MaskKernel::Batched,
        #[cfg(feature = "simd")]
        MaskKernel::Simd,
    ]
}

/// The reference model: sorted, deduplicated ids (LinkBitSet iterates
/// ascending by construction).
fn model(ids: &[u32]) -> Vec<LinkId> {
    let mut v: Vec<LinkId> = ids.iter().copied().map(LinkId).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/contains/len/iter agree with the Vec reference on arbitrary
    /// id sequences, including duplicates and out-of-capacity ids.
    #[test]
    fn matches_vec_reference(ids in proptest::collection::vec(0u32..500, 0..80)) {
        let mut set = LinkBitSet::new();
        let mut seen: Vec<LinkId> = Vec::new();
        for &id in &ids {
            let l = LinkId(id);
            let fresh = set.insert(l);
            prop_assert_eq!(fresh, !seen.contains(&l), "insert return for {:?}", l);
            if fresh {
                seen.push(l);
            }
        }
        let reference = model(&ids);
        prop_assert_eq!(set.len(), reference.len());
        prop_assert_eq!(set.is_empty(), reference.is_empty());
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), reference.clone());
        // Membership agrees everywhere, probed past the populated range.
        for id in 0..600u32 {
            prop_assert_eq!(set.contains(LinkId(id)), reference.contains(&LinkId(id)));
        }
    }

    /// Word-parallel intersection agrees with the quadratic reference.
    #[test]
    fn intersects_matches_reference(
        a in proptest::collection::vec(0u32..300, 0..40),
        b in proptest::collection::vec(0u32..300, 0..40),
    ) {
        let sa: LinkBitSet = a.iter().map(|&i| LinkId(i)).collect();
        let sb: LinkBitSet = b.iter().map(|&i| LinkId(i)).collect();
        let expect = model(&a).iter().any(|l| model(&b).contains(l));
        prop_assert_eq!(sa.intersects(&sb), expect);
        prop_assert_eq!(sb.intersects(&sa), expect);
        prop_assert_eq!(sa.intersects_words(sb.words()), expect);
    }

    /// Batched (and, when compiled in, AVX2) mask kernels agree with the
    /// scalar baseline on raw word slices whose lengths straddle the 4-word
    /// lane boundary: 0, 1, 3, 4, 5 words and beyond, independently per
    /// side so mismatched lengths are exercised too.
    #[test]
    fn mask_kernels_match_scalar_on_lane_boundaries(
        a in proptest::collection::vec(0u64..u64::MAX, 0..10),
        b in proptest::collection::vec(0u64..u64::MAX, 0..10),
        sparse_bit in 0usize..320,
    ) {
        let expect = a.iter().zip(&b).any(|(x, y)| x & y != 0);
        let sa: LinkBitSet = a
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| {
                (0..64).filter(move |i| word >> i & 1 == 1).map(move |i| LinkId((w * 64 + i) as u32))
            })
            .collect();
        for k in all_kernels() {
            prop_assert_eq!(
                rtr_topology::kernels::intersect_any(k, &a, &b),
                expect,
                "{:?} on {} x {} words", k, a.len(), b.len()
            );
            prop_assert_eq!(sa.intersects_words_with(k, &b), expect, "{:?} via LinkBitSet", k);
        }

        // Random dense words rarely miss; pin the all-zero-but-one case so
        // the "no intersection until the very last lane" path is covered.
        let mut lone = vec![0u64; sparse_bit / 64 + 1];
        if let Some(w) = lone.get_mut(sparse_bit / 64) {
            *w = 1 << (sparse_bit % 64);
        }
        for k in all_kernels() {
            prop_assert!(rtr_topology::kernels::intersect_any(k, &lone, &lone));
            prop_assert!(!rtr_topology::kernels::intersect_any(k, &lone, &[]));
        }
    }

    /// Union equals the merged reference; pre-sized and grown sets with
    /// the same members are equal (capacity is not observable).
    #[test]
    fn union_and_capacity_semantics(
        a in proptest::collection::vec(0u32..300, 0..40),
        b in proptest::collection::vec(0u32..300, 0..40),
        cap in 0usize..600,
    ) {
        let mut sa: LinkBitSet = a.iter().map(|&i| LinkId(i)).collect();
        let sb: LinkBitSet = b.iter().map(|&i| LinkId(i)).collect();
        sa.union_with(&sb);
        let mut merged = a.clone();
        merged.extend_from_slice(&b);
        prop_assert_eq!(sa.iter().collect::<Vec<_>>(), model(&merged));

        let mut pre = LinkBitSet::with_link_capacity(cap);
        for &i in &merged {
            pre.insert(LinkId(i));
        }
        prop_assert_eq!(&pre, &sa, "equality ignores trailing capacity");

        pre.clear();
        prop_assert!(pre.is_empty());
        prop_assert_eq!(pre.iter().count(), 0);
    }
}
