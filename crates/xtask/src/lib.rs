//! Workspace static-analysis subsystem: `cargo xtask analyze`.
//!
//! The paper's correctness claims (Theorems 1–3) are enforced by code that
//! runs on the forwarding hot path, so this crate turns the workspace's
//! hygiene rules into a mechanical, CI-enforced pass. A hand-rolled Rust
//! tokenizer ([`lexer`]) feeds a token-stream source model ([`engine`]);
//! the rule families ([`rules`], listed by `cargo xtask analyze
//! --list-rules` and tabulated in DESIGN.md §7) run over that model, and
//! every surviving violation must match a justified entry in
//! `crates/xtask/allow.toml` ([`allow`]).
//!
//! `cargo xtask bench-record` / `bench-check` ([`bench`]) regenerate and
//! validate the committed `BENCH_eval.json`.

#![deny(missing_docs)]

pub mod allow;
pub mod bench;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;

use engine::Violation;
use json::JsonValue;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// The result of one `cargo xtask analyze` run.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// Library source files scanned.
    pub files_scanned: usize,
    /// Of those, files in the hot-path crates.
    pub hot_files: usize,
    /// Violations matched by justified `allow.toml` entries.
    pub allowed: usize,
    /// Live (unjustified) violations, including `stale-allow` findings.
    pub violations: Vec<Violation>,
}

impl AnalyzeReport {
    /// True when the pass is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every rule family over the workspace and applies the allowlist.
///
/// # Errors
///
/// I/O failures, unlexable source files, malformed `allow.toml`, and a
/// theorem audit that cannot run are hard errors (distinct from rule
/// violations, which are data).
pub fn run_analyze() -> Result<AnalyzeReport, String> {
    let root = engine::workspace_root()?;
    let allow_path = root.join("crates/xtask/allow.toml");
    let allow = allow::load_allowlist(&allow_path)?;

    // Hot-path-scoped families run on the six hot-path crates; the rest
    // run on every crate's library source plus the root facade.
    let mut hot_files = Vec::new();
    for krate in rules::HOT_PATH_CRATES {
        engine::collect_rs_files(&root.join("crates").join(krate).join("src"), &mut hot_files)?;
    }
    let mut all_files = Vec::new();
    // Integration tests and benches are exempt from the library rules but
    // not from the unsafe audit: an unjustified `unsafe` in a test harness
    // (e.g. a custom `GlobalAlloc`) still deserves a SAFETY comment.
    let mut test_files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            engine::collect_rs_files(&src, &mut all_files)?;
        }
        for aux in ["tests", "benches"] {
            let dir = entry.path().join(aux);
            if dir.is_dir() {
                engine::collect_rs_files(&dir, &mut test_files)?;
            }
        }
    }
    engine::collect_rs_files(&root.join("src"), &mut all_files)?;

    let mut violations = Vec::new();
    let mut steady_seen = BTreeSet::new();
    let hot_set: BTreeSet<PathBuf> = hot_files.iter().cloned().collect();
    for path in &all_files {
        let file = engine::load_source(&root, path)?;
        if hot_set.contains(path) {
            rules::panic_freedom::check(&file, &mut violations);
            rules::print::check(&file, &mut violations);
            rules::determinism::check(&file, &mut violations);
        }
        rules::invariants::check_header_discipline(&file, &mut violations);
        rules::invariants::check_float_eq(&file, &mut violations);
        rules::confinement::check_thread_discipline(&file, &mut violations);
        rules::confinement::check_simd_discipline(&file, &mut violations);
        rules::membership::check(&file, &mut violations);
        rules::unsafe_audit::check(&file, &mut violations);
        rules::alloc::check(&file, &mut violations, &mut steady_seen);
    }
    for path in &test_files {
        let file = engine::load_source(&root, path)?;
        rules::unsafe_audit::check(&file, &mut violations);
    }
    rules::alloc::check_config_complete(&steady_seen, &mut violations);
    rules::coverage::check(&root, &mut violations)?;

    let (live, allowed) = allow::apply_allowlist(violations, &allow);
    Ok(AnalyzeReport {
        files_scanned: all_files.len() + test_files.len(),
        hot_files: hot_files.len(),
        allowed,
        violations: live,
    })
}

/// Serializes `report` as the `--json` machine-readable form; the output
/// round-trips through [`json::json_parse`].
pub fn report_to_json(report: &AnalyzeReport) -> String {
    let violations = report
        .violations
        .iter()
        .map(|v| {
            JsonValue::Obj(vec![
                ("file".into(), JsonValue::Str(v.file.clone())),
                ("line".into(), JsonValue::Num(v.line as f64)),
                ("rule".into(), JsonValue::Str(v.rule.to_owned())),
                ("excerpt".into(), JsonValue::Str(v.excerpt.clone())),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("ok".into(), JsonValue::Bool(report.ok())),
        (
            "files_scanned".into(),
            JsonValue::Num(report.files_scanned as f64),
        ),
        ("hot_files".into(), JsonValue::Num(report.hot_files as f64)),
        ("allowed".into(), JsonValue::Num(report.allowed as f64)),
        ("violations".into(), JsonValue::Arr(violations)),
    ])
    .to_json()
}

/// Renders `report` as GitHub Actions `::error` workflow annotations, one
/// per violation, so CI failures point at the offending line in the PR
/// diff view.
pub fn report_to_github(report: &AnalyzeReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        // `::error` consumes the message verbatim up to the newline;
        // escape per the workflow-command grammar.
        let msg = format!("[{}] {}", v.rule, v.excerpt)
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        out.push_str(&format!(
            "::error file={},line={}::{}\n",
            v.file, v.line, msg
        ));
    }
    out
}

/// Renders the rule registry as the markdown table embedded in DESIGN.md
/// §7, with a live per-rule count of `allow.toml` entries.
///
/// # Errors
///
/// Fails when `allow.toml` cannot be loaded.
pub fn list_rules() -> Result<String, String> {
    let root = engine::workspace_root()?;
    let allow = allow::load_allowlist(&root.join("crates/xtask/allow.toml"))?;
    let mut out = String::new();
    out.push_str("| rule | family | scope | allows | rationale |\n");
    out.push_str("|---|---|---|---|---|\n");
    for rule in rules::RULES {
        let allows = allow.iter().filter(|a| a.rule == rule.name).count();
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            rule.name, rule.family, rule.scope, allows, rule.rationale
        ));
    }
    Ok(out)
}
