//! Hand-rolled Rust tokenizer for the static-analysis pass.
//!
//! The PR 1 analyzer worked on a *masked* copy of each source file —
//! comments and literals blanked to spaces before byte-substring checks.
//! That shape admits whole classes of false negatives (a pattern split
//! across a rustfmt line break) and false positives (an identifier that
//! merely *contains* a banned name). This module replaces it with a real
//! lexer: the full token stream with byte spans, so every rule reasons
//! about adjacent *tokens* instead of adjacent *bytes*.
//!
//! The lexer covers the token grammar the workspace uses — identifiers
//! and keywords, lifetimes vs. char literals, integer and float literals
//! in every base, plain/byte/C/raw string literals (`"…"`, `b"…"`,
//! `c"…"`, `r#"…"#`, `br#"…"#`), raw identifiers (`r#fn`), nested block
//! comments, and multi-byte operators (`::`, `==`, `..=`, …). It is
//! lossless: tokens are non-overlapping, strictly ascending byte spans,
//! and every non-whitespace byte of the input falls inside exactly one
//! token (the corpus test in `tests/corpus.rs` enforces this over every
//! `.rs` file in the repository). No external dependencies, consistent
//! with the vendored-stand-ins policy.

/// The kind of one lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal: integer or float, any base, with optional suffix.
    Num,
    /// String-ish literal: string, byte string, C string, raw string, or
    /// char/byte-char literal.
    Literal,
    /// `//` line comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` block comment (nesting handled), including `/** … */`.
    BlockComment,
    /// Punctuation or operator, possibly multi-byte (`::`, `==`, `..=`).
    Punct,
}

/// One token: its kind and the half-open byte span `lo..hi` in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
}

impl Tok {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.lo..self.hi).unwrap_or("")
    }
}

/// A tokenization failure: the byte offset it happened at and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description (e.g. "unterminated string literal").
    pub msg: &'static str,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Three-byte operators, tried before the two-byte ones.
const PUNCT3: [&[u8]; 4] = [b"..=", b"<<=", b">>=", b"..."];

/// Two-byte operators, tried before single punctuation bytes.
const PUNCT2: [&[u8]; 20] = [
    b"::", b"==", b"!=", b"<=", b">=", b"=>", b"->", b"..", b"&&", b"||", b"<<", b">>", b"+=",
    b"-=", b"*=", b"/=", b"%=", b"^=", b"&=", b"|=",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn byte_at(b: &[u8], i: usize) -> u8 {
    b.get(i).copied().unwrap_or(0)
}

/// Tokenizes `src` into the full token stream (comments included).
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated string literals, char
/// literals, or block comments. Any text a Rust compiler accepts lexes
/// without error; the converse does not hold (this lexer is deliberately
/// permissive about token *contents*).
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    b: &'s [u8],
    pos: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Result<Vec<Tok>, LexError> {
        while self.pos < self.b.len() {
            let c = byte_at(self.b, self.pos);
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'/' && byte_at(self.b, self.pos + 1) == b'/' {
                self.line_comment();
            } else if c == b'/' && byte_at(self.b, self.pos + 1) == b'*' {
                self.block_comment()?;
            } else if c == b'"' {
                self.string()?;
            } else if c == b'\'' {
                self.lifetime_or_char()?;
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal()?;
            } else if c.is_ascii_digit() {
                self.number();
            } else {
                self.punct();
            }
        }
        Ok(self.out)
    }

    fn push(&mut self, kind: TokKind, lo: usize) {
        self.out.push(Tok {
            kind,
            lo,
            hi: self.pos,
        });
    }

    fn line_comment(&mut self) {
        let lo = self.pos;
        while self.pos < self.b.len() && byte_at(self.b, self.pos) != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, lo);
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let lo = self.pos;
        let mut depth = 0usize;
        while self.pos < self.b.len() {
            if byte_at(self.b, self.pos) == b'/' && byte_at(self.b, self.pos + 1) == b'*' {
                depth += 1;
                self.pos += 2;
            } else if byte_at(self.b, self.pos) == b'*' && byte_at(self.b, self.pos + 1) == b'/' {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    self.push(TokKind::BlockComment, lo);
                    return Ok(());
                }
            } else {
                self.pos += 1;
            }
        }
        Err(LexError {
            at: lo,
            msg: "unterminated block comment",
        })
    }

    /// A plain (escaped) string body; the cursor sits on the opening `"`.
    fn string(&mut self) -> Result<(), LexError> {
        let lo = self.pos;
        self.pos += 1; // opening quote
        while self.pos < self.b.len() {
            match byte_at(self.b, self.pos) {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    self.push(TokKind::Literal, lo);
                    return Ok(());
                }
                _ => self.pos += 1,
            }
        }
        Err(LexError {
            at: lo,
            msg: "unterminated string literal",
        })
    }

    /// A raw string body starting at `lo` (span start, possibly covering a
    /// `r`/`br`/`cr` prefix); the cursor sits on the first `#` or the `"`.
    fn raw_string(&mut self, lo: usize) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while byte_at(self.b, self.pos) == b'#' {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(byte_at(self.b, self.pos), b'"');
        self.pos += 1;
        while self.pos < self.b.len() {
            if byte_at(self.b, self.pos) == b'"' {
                let mut k = 0;
                while k < hashes && byte_at(self.b, self.pos + 1 + k) == b'#' {
                    k += 1;
                }
                if k == hashes {
                    self.pos += 1 + hashes;
                    self.push(TokKind::Literal, lo);
                    return Ok(());
                }
            }
            self.pos += 1;
        }
        Err(LexError {
            at: lo,
            msg: "unterminated raw string literal",
        })
    }

    /// A char (or byte-char) literal body starting at `lo`; the cursor
    /// sits on the opening `'` which is already known to open a literal.
    fn char_literal(&mut self, lo: usize) -> Result<(), LexError> {
        self.pos += 1; // opening quote
        if byte_at(self.b, self.pos) == b'\\' {
            self.pos += 2; // escape lead + escaped byte (covers \', \\)
            while self.pos < self.b.len() && byte_at(self.b, self.pos) != b'\'' {
                self.pos += 1; // \x7f, \u{…} extend further
            }
        } else {
            while self.pos < self.b.len() && byte_at(self.b, self.pos) != b'\'' {
                self.pos += 1; // one (possibly multi-byte UTF-8) char
            }
        }
        if self.pos >= self.b.len() {
            return Err(LexError {
                at: lo,
                msg: "unterminated char literal",
            });
        }
        self.pos += 1; // closing quote
        self.push(TokKind::Literal, lo);
        Ok(())
    }

    /// `'…`: a lifetime/label unless the identifier run is followed by a
    /// closing quote (then it is a char literal like `'a'`).
    fn lifetime_or_char(&mut self) -> Result<(), LexError> {
        let lo = self.pos;
        let first = byte_at(self.b, self.pos + 1);
        if first == b'\\' {
            return self.char_literal(lo);
        }
        if is_ident_start(first) {
            let mut j = self.pos + 2;
            while is_ident_continue(byte_at(self.b, j)) {
                j += 1;
            }
            if byte_at(self.b, j) == b'\'' {
                return self.char_literal(lo); // 'a'
            }
            self.pos = j;
            self.push(TokKind::Lifetime, lo);
            return Ok(());
        }
        // Non-identifier content: a char literal like '(' or '✓'.
        self.char_literal(lo)
    }

    /// An identifier — or the prefix of a string/char literal (`b"…"`,
    /// `r#"…"#`, `c"…"`, `b'x'`) or a raw identifier (`r#fn`).
    fn ident_or_prefixed_literal(&mut self) -> Result<(), LexError> {
        let lo = self.pos;
        while is_ident_continue(byte_at(self.b, self.pos)) {
            self.pos += 1;
        }
        let word = self.b.get(lo..self.pos).unwrap_or(b"");
        let next = byte_at(self.b, self.pos);
        let is_raw_prefix = matches!(word, b"r" | b"br" | b"cr");
        let is_plain_prefix = matches!(word, b"b" | b"c");
        if next == b'"' && (is_raw_prefix || is_plain_prefix) {
            if is_raw_prefix {
                return self.raw_string(lo);
            }
            self.pos += 1; // consume the quote via string()'s convention
            self.pos -= 1;
            // Re-run the plain string scan from the quote, spanning `lo`.
            let quote = self.pos;
            self.pos = quote;
            return self.string_spanning(lo);
        }
        if next == b'#' && is_raw_prefix {
            // Either a raw string with hashes or a raw identifier.
            let mut j = self.pos;
            while byte_at(self.b, j) == b'#' {
                j += 1;
            }
            if byte_at(self.b, j) == b'"' {
                return self.raw_string(lo);
            }
            if word == b"r" && is_ident_start(byte_at(self.b, self.pos + 1)) {
                // Raw identifier `r#fn`: one Ident token covering it all.
                self.pos += 1;
                while is_ident_continue(byte_at(self.b, self.pos)) {
                    self.pos += 1;
                }
                self.push(TokKind::Ident, lo);
                return Ok(());
            }
        }
        if next == b'\'' && word == b"b" {
            return self.char_literal(lo); // byte char b'x'
        }
        self.push(TokKind::Ident, lo);
        Ok(())
    }

    /// A plain string scan whose token span starts at `lo` (for `b"…"` /
    /// `c"…"` prefixes); the cursor sits on the opening quote.
    fn string_spanning(&mut self, lo: usize) -> Result<(), LexError> {
        let quote = self.pos;
        self.pos = quote;
        // Reuse string() but fix up the span start afterwards.
        self.string()?;
        if let Some(last) = self.out.last_mut() {
            last.lo = lo;
        }
        Ok(())
    }

    /// A numeric literal: integer or float, any base, optional suffix.
    fn number(&mut self) {
        let lo = self.pos;
        let radix_prefix = byte_at(self.b, self.pos) == b'0'
            && matches!(
                byte_at(self.b, self.pos + 1),
                b'x' | b'X' | b'o' | b'O' | b'b' | b'B'
            );
        if radix_prefix {
            self.pos += 2;
            // Digits of any base plus type suffix, one run.
            while is_ident_continue(byte_at(self.b, self.pos)) {
                self.pos += 1;
            }
            self.push(TokKind::Num, lo);
            return;
        }
        while byte_at(self.b, self.pos).is_ascii_digit() || byte_at(self.b, self.pos) == b'_' {
            self.pos += 1;
        }
        // Fractional part: `.` followed by a digit (so `0..n` and
        // `1.max(2)` stay ranges / method calls), or a trailing `1.`.
        if byte_at(self.b, self.pos) == b'.' {
            let after = byte_at(self.b, self.pos + 1);
            if after.is_ascii_digit() {
                self.pos += 1;
                while byte_at(self.b, self.pos).is_ascii_digit()
                    || byte_at(self.b, self.pos) == b'_'
                {
                    self.pos += 1;
                }
            } else if after != b'.' && !is_ident_start(after) {
                self.pos += 1; // `1.`
            }
        }
        // Exponent.
        if matches!(byte_at(self.b, self.pos), b'e' | b'E') {
            let mut j = self.pos + 1;
            if matches!(byte_at(self.b, j), b'+' | b'-') {
                j += 1;
            }
            if byte_at(self.b, j).is_ascii_digit() {
                self.pos = j;
                while byte_at(self.b, self.pos).is_ascii_digit()
                    || byte_at(self.b, self.pos) == b'_'
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`f64`, `u32`, `usize`, …).
        while is_ident_continue(byte_at(self.b, self.pos)) {
            self.pos += 1;
        }
        self.push(TokKind::Num, lo);
    }

    fn punct(&mut self) {
        let lo = self.pos;
        let rest = self.b.get(self.pos..).unwrap_or(b"");
        for p in PUNCT3 {
            if rest.starts_with(p) {
                self.pos += 3;
                self.push(TokKind::Punct, lo);
                return;
            }
        }
        for p in PUNCT2 {
            if rest.starts_with(p) {
                self.pos += 2;
                self.push(TokKind::Punct, lo);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Punct, lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        kinds(src).into_iter().map(|(_, s)| s).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Num, "42".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn multi_byte_operators_are_single_tokens() {
        assert_eq!(
            texts("a::b == c != d ..= e .. f -> g => h"),
            vec!["a", "::", "b", "==", "c", "!=", "d", "..=", "e", "..", "f", "->", "g", "=>", "h"]
        );
    }

    #[test]
    fn float_and_integer_literals() {
        assert_eq!(
            texts("1.5e-3 0.5 1_000 0x7f_u8 1f64 2usize 1."),
            vec!["1.5e-3", "0.5", "1_000", "0x7f_u8", "1f64", "2usize", "1."]
        );
        // Ranges and method calls on integers do not swallow the dot.
        assert_eq!(texts("0..2"), vec!["0", "..", "2"]);
        assert_eq!(texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
    }

    #[test]
    fn strings_and_escapes_are_one_literal() {
        let src = r#"let s = "a.unwrap() \" // not a comment";"#;
        let k = kinds(src);
        assert_eq!(k[3].0, TokKind::Literal);
        assert!(k[3].1.contains("unwrap"));
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn raw_byte_and_c_strings() {
        for src in [
            "r\"x[0]\"",
            "r#\"quote \" inside\"#",
            "br#\"bytes\"#",
            "b\"bytes\"",
            "c\"cstr\"",
        ] {
            let toks = lex(src).unwrap();
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokKind::Literal, "{src}");
            assert_eq!(toks[0].lo, 0);
            assert_eq!(toks[0].hi, src.len());
        }
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("<'a> 'static 'x' b'y' '\\n' '_'"),
            vec![
                (TokKind::Punct, "<".into()),
                (TokKind::Lifetime, "'a".into()),
                (TokKind::Punct, ">".into()),
                (TokKind::Lifetime, "'static".into()),
                (TokKind::Literal, "'x'".into()),
                (TokKind::Literal, "b'y'".into()),
                (TokKind::Literal, "'\\n'".into()),
                (TokKind::Literal, "'_'".into()),
            ]
        );
    }

    #[test]
    fn comments_line_block_nested() {
        let src = "a // line .unwrap()\nb /* c[0] /* nested */ still */ d";
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "a".into()));
        assert_eq!(k[1].0, TokKind::LineComment);
        assert_eq!(k[2], (TokKind::Ident, "b".into()));
        assert_eq!(k[3].0, TokKind::BlockComment);
        assert!(k[3].1.contains("nested"));
        assert_eq!(k[4], (TokKind::Ident, "d".into()));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#fn"), vec![(TokKind::Ident, "r#fn".into())]);
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("r#\"abc").is_err());
        assert!(lex("'\\n").is_err());
    }

    #[test]
    fn spans_are_lossless() {
        let src = "fn f(v: &[u64]) -> bool { v.iter().any(|&x| x != 0) } // tail";
        let toks = lex(src).unwrap();
        let mut prev_hi = 0;
        for t in &toks {
            assert!(t.lo >= prev_hi, "overlap at {t:?}");
            // Gap between tokens is pure whitespace.
            assert!(src[prev_hi..t.lo].chars().all(char::is_whitespace));
            prev_hi = t.hi;
        }
        assert!(src[prev_hi..].chars().all(char::is_whitespace));
    }
}
