//! Thin CLI over the [`xtask`] static-analysis library: argument parsing
//! and output rendering only. The tokenizer, rule engine, rule families,
//! allowlist flow and bench gates all live in the library (see
//! `src/lib.rs`), where they are unit- and integration-tested.

use std::process::ExitCode;

/// Output mode for `cargo xtask analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AnalyzeMode {
    /// Human-readable `file:line: [rule] excerpt` lines plus a summary.
    Text,
    /// Machine-readable JSON report on stdout.
    Json,
    /// Text output plus GitHub Actions `::error` annotations.
    Github,
    /// Print the rule registry table and exit.
    ListRules,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let mode = match args.get(1).map(String::as_str) {
                None => AnalyzeMode::Text,
                Some("--json") => AnalyzeMode::Json,
                Some("--github") => AnalyzeMode::Github,
                Some("--list-rules") => AnalyzeMode::ListRules,
                Some(other) => {
                    eprintln!(
                        "cargo xtask analyze: unknown flag `{other}` \
                         (expected --json, --github, or --list-rules)"
                    );
                    return ExitCode::FAILURE;
                }
            };
            run_analyze_cli(mode)
        }
        Some("bench-record") => run_bench(xtask::bench::run_bench_record, "bench-record"),
        Some("bench-check") => run_bench(xtask::bench::run_bench_check, "bench-check"),
        Some("bench-scale") => {
            let smoke = match args.get(1).map(String::as_str) {
                None => false,
                Some("--smoke") => true,
                Some(other) => {
                    eprintln!("cargo xtask bench-scale: unknown flag `{other}` (expected --smoke)");
                    return ExitCode::FAILURE;
                }
            };
            run_bench(
                move |root| xtask::bench::run_bench_scale(root, smoke),
                "bench-scale",
            )
        }
        Some("bench-serve") => {
            let smoke = match args.get(1).map(String::as_str) {
                None => false,
                Some("--smoke") => true,
                Some(other) => {
                    eprintln!("cargo xtask bench-serve: unknown flag `{other}` (expected --smoke)");
                    return ExitCode::FAILURE;
                }
            };
            run_bench(
                move |root| xtask::bench::run_bench_serve(root, smoke),
                "bench-serve",
            )
        }
        Some("bench-churn") => {
            let smoke = match args.get(1).map(String::as_str) {
                None => false,
                Some("--smoke") => true,
                Some(other) => {
                    eprintln!("cargo xtask bench-churn: unknown flag `{other}` (expected --smoke)");
                    return ExitCode::FAILURE;
                }
            };
            run_bench(
                move |root| xtask::bench::run_bench_churn(root, smoke),
                "bench-churn",
            )
        }
        other => {
            eprintln!(
                "usage: cargo xtask <analyze [--json|--github|--list-rules]|bench-record|bench-check|bench-scale [--smoke]|bench-serve [--smoke]|bench-churn [--smoke]>\n  \
                 (got {:?})\n\n\
                 analyze       Runs the workspace static-analysis pass: panic-freedom,\n\
                 \x20             print/determinism discipline in the hot-path crates,\n\
                 \x20             paper-invariant lints, theorem coverage, thread/SIMD\n\
                 \x20             discipline, link-set membership, unsafe-audit, and\n\
                 \x20             allocation discipline in steady-state functions.\n\
                 \x20             --json emits a machine-readable report, --github adds\n\
                 \x20             workflow ::error annotations, --list-rules prints the\n\
                 \x20             rule registry (the DESIGN.md \u{a7}7 table).\n\
                 bench-record  Regenerates BENCH_eval.json at the workspace root\n\
                 \x20             (driver wall times serial vs parallel, per kernel).\n\
                 bench-check   Validates the committed BENCH_eval.json (parses, rows\n\
                 \x20             carry serial_secs/sweep_secs, speedups sane for the\n\
                 \x20             recording host) and fails if a fresh run regresses\n\
                 \x20             >2x on the serial total or on any topology's sweep_secs;\n\
                 \x20             also schema-validates the committed BENCH_scale.json,\n\
                 \x20             BENCH_serve.json (quantiles, drains, scaling), and\n\
                 \x20             BENCH_churn.json (oracle-checked, incremental <= rebuild).\n\
                 bench-scale   Regenerates BENCH_scale.json at the workspace root\n\
                 \x20             (1k-100k-node size sweep per generator); --smoke runs\n\
                 \x20             only the 1k tier into target/bench-scale/ (the CI job).\n\
                 bench-serve   Regenerates BENCH_serve.json at the workspace root\n\
                 \x20             (loadgen QPS x workers x transport sweep); --smoke runs\n\
                 \x20             the 1-second tier into target/bench-serve/ (the CI job).\n\
                 bench-churn   Regenerates BENCH_churn.json at the workspace root\n\
                 \x20             (per-event incremental vs rebuild baseline cost, every\n\
                 \x20             event oracle-checked); --smoke runs one small-grid\n\
                 \x20             timeline into target/bench-churn/ (the CI job).",
                other.unwrap_or("<nothing>")
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs the analyze pass and renders it in `mode`.
fn run_analyze_cli(mode: AnalyzeMode) -> ExitCode {
    if mode == AnalyzeMode::ListRules {
        return match xtask::list_rules() {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cargo xtask analyze: error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let report = match xtask::run_analyze() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cargo xtask analyze: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        AnalyzeMode::Json => print!("{}", xtask::report_to_json(&report)),
        AnalyzeMode::Github | AnalyzeMode::Text => {
            if mode == AnalyzeMode::Github {
                print!("{}", xtask::report_to_github(&report));
            }
            for v in &report.violations {
                println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.excerpt);
            }
            if report.ok() {
                println!(
                    "cargo xtask analyze: OK — {} files scanned ({} hot-path), \
                     0 violations, {} allowlisted sites",
                    report.files_scanned, report.hot_files, report.allowed,
                );
            } else {
                println!(
                    "cargo xtask analyze: FAILED — {} violation(s), {} allowlisted sites \
                     (add a justified entry to crates/xtask/allow.toml only for \
                     documented-contract sites)",
                    report.violations.len(),
                    report.allowed,
                );
            }
        }
        AnalyzeMode::ListRules => {}
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs one bench subcommand with the workspace root resolved.
fn run_bench(f: impl FnOnce(&std::path::Path) -> Result<(), String>, name: &str) -> ExitCode {
    let root = match xtask::engine::workspace_root() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("cargo xtask {name}: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match f(&root) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cargo xtask {name}: error: {e}");
            ExitCode::FAILURE
        }
    }
}
