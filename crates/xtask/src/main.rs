//! Workspace static-analysis driver: `cargo xtask analyze`.
//!
//! The paper's correctness claims (Theorems 1–3) are enforced by code that
//! runs on the forwarding hot path, so this tool turns the workspace's
//! hygiene rules into a mechanical, CI-enforced pass. The rule families
//! (see DESIGN.md, "Static analysis & lint policy"):
//!
//! 1. **Panic-freedom** — non-test code of the hot-path crates (`rtr-core`,
//!    `rtr-obs`, `rtr-routing`, `rtr-sim`, `rtr-topology`) must not call `.unwrap()` /
//!    `.expect()`, invoke `panic!` / `unreachable!` / `todo!` /
//!    `unimplemented!`, or index slices and `Vec`s with `[...]`. Every
//!    remaining site must match a justified entry in
//!    `crates/xtask/allow.toml`.
//! 2. **Paper invariants** — the `failed_link` / `cross_link` header fields
//!    may be mutated only inside their typed setters in
//!    `crates/sim/src/header.rs` (`record_failed_link` /
//!    `record_cross_link`), and floating-point link weights must never be
//!    compared with `==` / `!=`.
//! 3. **Theorem coverage** — every `Theorem N` stated in DESIGN.md must map
//!    to at least one `#[test]` in `crates/core/tests/theorems.rs` whose
//!    name contains `theoremN`.
//! 4. **Thread discipline** — `thread::spawn` / `thread::scope` appear only
//!    in the fork-join executor (`crates/eval/src/par.rs`), the one place
//!    threads are born, so the driver's determinism argument stays local.
//! 5. **SIMD discipline** — `std::arch` / `core::arch` intrinsics appear
//!    only in the crossing-mask kernel module
//!    (`crates/topology/src/kernels.rs`), the one place `unsafe` vector
//!    code is wrapped behind the safe `MaskKernel` dispatch.
//! 6. **Link-set membership** — non-test code of `rtr-core` must test
//!    link-set membership through the word-parallel bitset API
//!    (`LinkIdSet::contains` / `LinkBitSet` / crossing masks): linear
//!    `.iter().any(` chains and reference-taking `.contains(&` scans are
//!    flagged, with justified exemptions in `allow.toml`.
//! 7. **Print discipline** — non-test code of the hot-path crates must not
//!    write to stdout/stderr (`println!` / `eprintln!` / `print!` /
//!    `eprint!` / `dbg!`): event emission is confined to
//!    `rtr_obs::TraceSink` calls, so instrumented runs and the `--trace`
//!    replay observe everything the hot path reports (DESIGN.md §10).
//!
//! `cargo xtask bench-record` regenerates `BENCH_eval.json` at the
//! workspace root via the `bench_eval` binary of `rtr-bench`.
//! `cargo xtask bench-check` validates the committed `BENCH_eval.json`
//! (parses, every topology row carries `serial_secs` and `sweep_secs`)
//! and fails if a fresh quick-workload run regresses more than 2× against
//! it — on the serial total, or on any single topology's phase-1 sweep
//! time (`sweep_secs`, with a 1 ms absolute floor for timer noise).
//!
//! The analysis is a source-level lexer (comments, strings and `#[cfg(test)]`
//! regions are blanked out before pattern checks), not a full parser: it is
//! deliberately conservative and any false positive is resolved by an
//! explicit, justified allowlist entry rather than a silent skip.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Hot-path crate directories (under `crates/`) subject to panic-freedom
/// and print discipline.
const HOT_PATH_CRATES: [&str; 5] = ["core", "obs", "routing", "sim", "topology"];

/// Keywords that may legally precede a `[` without it being an indexing
/// expression (`in [..]`, `return [..]`, slice patterns after `let`, ...).
const NON_INDEX_KEYWORDS: [&str; 18] = [
    "as", "box", "break", "dyn", "else", "for", "if", "impl", "in", "let", "loop", "match", "move",
    "mut", "ref", "return", "unsafe", "while",
];

/// Methods that mutate a `LinkIdSet` header field.
const MUTATORS: [&str; 9] = [
    "insert", "extend", "clear", "remove", "push", "pop", "retain", "truncate", "drain",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => match run_analyze() {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("cargo xtask analyze: error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-record") => match run_bench_record() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("cargo xtask bench-record: error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("bench-check") => match run_bench_check() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("cargo xtask bench-check: error: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!(
                "usage: cargo xtask <analyze|bench-record|bench-check>\n  (got {:?})\n\n\
                 analyze       Runs the workspace static-analysis pass: panic-freedom\n\
                 \x20             and print discipline in the hot-path crates,\n\
                 \x20             paper-invariant lints, theorem coverage, thread/SIMD\n\
                 \x20             discipline, link-set membership.\n\
                 bench-record  Regenerates BENCH_eval.json at the workspace root\n\
                 \x20             (driver wall times serial vs parallel, per kernel).\n\
                 bench-check   Validates the committed BENCH_eval.json (parses, rows\n\
                 \x20             carry serial_secs/sweep_secs) and fails if a fresh\n\
                 \x20             run regresses >2x on the serial total or on any\n\
                 \x20             topology's sweep_secs.",
                other.unwrap_or("<nothing>")
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs the `bench_eval` recorder and leaves `BENCH_eval.json` at the
/// workspace root. Records with `--features simd` so the committed
/// artifact carries the full kernel matrix (`sweep_secs_simd` included;
/// the kernel falls back to the batched path on non-AVX2 recorders).
fn run_bench_record() -> Result<(), String> {
    let root = workspace_root()?;
    let out = root.join("BENCH_eval.json");
    let status = std::process::Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "rtr-bench",
            "--features",
            "simd",
            "--bin",
            "bench_eval",
        ])
        .arg("--")
        .arg(&out)
        .current_dir(&root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_eval exited with {status}"));
    }
    println!("cargo xtask bench-record: wrote {}", out.display());
    Ok(())
}

/// One topology row of `BENCH_eval.json`, as `bench-check` reads it.
#[derive(Debug)]
struct BenchRow {
    name: String,
    serial_secs: f64,
    sweep_secs: f64,
}

/// Reads `path` and extracts the per-topology rows, failing if the file
/// does not parse as JSON or any row lacks a numeric `serial_secs` or
/// `sweep_secs` field (the recorder's schema).
fn parse_bench_rows(path: &Path) -> Result<Vec<BenchRow>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let topologies = doc
        .get("topologies")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `topologies` array", path.display()))?;
    if topologies.is_empty() {
        return Err(format!("{}: `topologies` is empty", path.display()));
    }
    let mut rows = Vec::new();
    for (i, row) in topologies.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: row {i} has no string `name`", path.display()))?
            .to_owned();
        let serial_secs = row
            .get("serial_secs")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: row `{name}` has no numeric `serial_secs`",
                    path.display()
                )
            })?;
        let sweep_secs = row
            .get("sweep_secs")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: row `{name}` has no numeric `sweep_secs`",
                    path.display()
                )
            })?;
        rows.push(BenchRow {
            name,
            serial_secs,
            sweep_secs,
        });
    }
    Ok(rows)
}

/// Validates the committed `BENCH_eval.json` and guards against gross
/// performance regressions: records a fresh file under `target/`, then
/// fails if the fresh quick-workload serial total exceeds 2× the
/// committed total, or if any single topology's phase-1 sweep time
/// exceeds 2× its committed `sweep_secs` plus 1 ms of absolute slack
/// (the per-topology sweep is sub-millisecond on small graphs, so the
/// floor keeps timer noise from tripping the ratio). Coarse gates that
/// survive CI-machine noise while catching algorithmic regressions.
fn run_bench_check() -> Result<(), String> {
    let root = workspace_root()?;
    let committed = parse_bench_rows(&root.join("BENCH_eval.json"))?;

    let fresh_dir = root.join("target").join("bench-check");
    fs::create_dir_all(&fresh_dir)
        .map_err(|e| format!("cannot create {}: {e}", fresh_dir.display()))?;
    let fresh_path = fresh_dir.join("BENCH_eval.fresh.json");
    let status = std::process::Command::new("cargo")
        .args(["run", "--release", "-p", "rtr-bench", "--bin", "bench_eval"])
        .arg("--")
        .arg(&fresh_path)
        .current_dir(&root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_eval exited with {status}"));
    }
    let fresh = parse_bench_rows(&fresh_path)?;

    for c in &committed {
        let Some(f) = fresh.iter().find(|f| f.name == c.name) else {
            return Err(format!(
                "fresh run is missing committed topology `{}`",
                c.name
            ));
        };
        if f.sweep_secs > 2.0 * c.sweep_secs + 0.001 {
            return Err(format!(
                "phase-1 sweep regression on `{}`: fresh sweep_secs {:.6}s > \
                 2x committed {:.6}s + 1ms — investigate before re-recording \
                 with `cargo xtask bench-record`",
                c.name, f.sweep_secs, c.sweep_secs
            ));
        }
    }
    let committed_total: f64 = committed.iter().map(|r| r.serial_secs).sum();
    let fresh_total: f64 = fresh.iter().map(|r| r.serial_secs).sum();
    if fresh_total > 2.0 * committed_total {
        return Err(format!(
            "quick-workload serial regression: fresh total {fresh_total:.4}s > \
             2x committed total {committed_total:.4}s — investigate before \
             re-recording with `cargo xtask bench-record`"
        ));
    }
    println!(
        "cargo xtask bench-check: OK — {} topologies, fresh serial total \
         {fresh_total:.4}s vs committed {committed_total:.4}s (gates: 2x \
         total, 2x+1ms per-topology sweep)",
        committed.len()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (bench-check; this workspace vendors no JSON parser)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough to read `BENCH_eval.json`.
#[derive(Debug, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` on non-objects and absent keys.
    fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the full input (trailing garbage is
/// an error). Covers the JSON grammar the recorder emits — objects,
/// arrays, strings with `\`-escapes, numbers, literals.
fn json_parse(text: &str) -> Result<JsonValue, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let value = json_value(b, &mut pos)?;
    json_skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn json_skip_ws(b: &[u8], pos: &mut usize) {
    while byte_at(b, *pos).is_ascii_whitespace() && *pos < b.len() {
        *pos += 1;
    }
}

fn json_expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    json_skip_ws(b, pos);
    if byte_at(b, *pos) != c {
        return Err(format!("expected `{}` at byte {}", c as char, *pos));
    }
    *pos += 1;
    Ok(())
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    json_skip_ws(b, pos);
    match byte_at(b, *pos) {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            json_skip_ws(b, pos);
            if byte_at(b, *pos) == b'}' {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                json_skip_ws(b, pos);
                let key = json_string(b, pos)?;
                json_expect(b, pos, b':')?;
                members.push((key, json_value(b, pos)?));
                json_skip_ws(b, pos);
                match byte_at(b, *pos) {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            json_skip_ws(b, pos);
            if byte_at(b, *pos) == b']' {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(json_value(b, pos)?);
                json_skip_ws(b, pos);
                match byte_at(b, *pos) {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        b'"' => json_string(b, pos).map(JsonValue::Str),
        b't' if b.get(*pos..*pos + 4) == Some(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        b'f' if b.get(*pos..*pos + 5) == Some(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        b'n' if b.get(*pos..*pos + 4) == Some(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        _ => {
            let start = *pos;
            if byte_at(b, *pos) == b'-' {
                *pos += 1;
            }
            while matches!(
                byte_at(b, *pos),
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            ) {
                *pos += 1;
            }
            let tok = b
                .get(start..*pos)
                .map(String::from_utf8_lossy)
                .unwrap_or_default();
            tok.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid value at byte {start}"))
        }
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    json_expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < b.len() {
        match byte_at(b, *pos) {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => {
                let esc = byte_at(b, *pos + 1);
                out.push(match esc {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    other => other, // `\"`, `\\`, `\/` — good enough here
                });
                *pos += 2;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

/// One entry of `crates/xtask/allow.toml`.
#[derive(Debug, Default, Clone)]
struct AllowEntry {
    /// Workspace-relative file the exemption applies to.
    file: String,
    /// Rule name (`unwrap`, `expect`, `panic-macro`, `indexing`,
    /// `float-eq`, `linkset-membership`, ...).
    rule: String,
    /// Substring of the offending source line that identifies the site.
    pattern: String,
    /// One-line human justification. Must be non-empty.
    justification: String,
}

/// A single rule violation at a source location.
#[derive(Debug)]
struct Violation {
    /// Workspace-relative path.
    file: String,
    /// 1-based line number.
    line: usize,
    /// Rule name, matching [`AllowEntry::rule`].
    rule: &'static str,
    /// The offending (original, unmasked) source line, trimmed.
    excerpt: String,
}

/// A loaded source file with its comment/string/test-blanked shadow copy.
struct SourceFile {
    /// Workspace-relative path with `/` separators.
    rel: String,
    /// Original text, split into lines for excerpts and allow matching.
    lines: Vec<String>,
    /// Same length as the original, with comments, string/char literals and
    /// `#[cfg(test)]` regions replaced by spaces (newlines preserved).
    masked: Vec<u8>,
}

fn run_analyze() -> Result<bool, String> {
    let root = workspace_root()?;
    let allow_path = root.join("crates/xtask/allow.toml");
    let allow = load_allowlist(&allow_path)?;

    // Rule family 1 runs on the hot-path crates; family 2 on every crate's
    // library source plus the root facade (test code is always exempt).
    let mut hot_files = Vec::new();
    for krate in HOT_PATH_CRATES {
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut hot_files)?;
    }
    let mut all_files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut all_files)?;
        }
    }
    collect_rs_files(&root.join("src"), &mut all_files)?;

    let mut violations = Vec::new();
    let hot_set: BTreeSet<PathBuf> = hot_files.iter().cloned().collect();
    for path in &all_files {
        let file = load_source(&root, path)?;
        if hot_set.contains(path) {
            check_panic_freedom(&file, &mut violations);
            check_print_discipline(&file, &mut violations);
        }
        check_header_discipline(&file, &mut violations);
        check_float_eq(&file, &mut violations);
        check_thread_discipline(&file, &mut violations);
        check_simd_discipline(&file, &mut violations);
        check_linkset_membership(&file, &mut violations);
    }
    check_theorem_coverage(&root, &mut violations)?;

    // Split violations into allowlisted and live; then flag stale entries.
    let mut used = vec![false; allow.len()];
    let mut live = Vec::new();
    let mut allowed = 0usize;
    for v in violations {
        let hit = allow
            .iter()
            .enumerate()
            .find(|(_, a)| a.file == v.file && a.rule == v.rule && v.excerpt.contains(&a.pattern));
        match hit {
            Some((i, _)) => {
                if let Some(flag) = used.get_mut(i) {
                    *flag = true;
                }
                allowed += 1;
            }
            None => live.push(v),
        }
    }
    for (entry, was_used) in allow.iter().zip(&used) {
        if !was_used {
            live.push(Violation {
                file: "crates/xtask/allow.toml".into(),
                line: 0,
                rule: "stale-allow",
                excerpt: format!(
                    "entry ({} / {} / {:?}) matches no site — remove it",
                    entry.file, entry.rule, entry.pattern
                ),
            });
        }
    }

    if live.is_empty() {
        println!(
            "cargo xtask analyze: OK — {} files scanned ({} hot-path), \
             0 violations, {allowed} allowlisted sites",
            all_files.len(),
            hot_files.len(),
        );
        Ok(true)
    } else {
        for v in &live {
            println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.excerpt);
        }
        println!(
            "cargo xtask analyze: FAILED — {} violation(s), {allowed} allowlisted sites \
             (add a justified entry to crates/xtask/allow.toml only for \
             documented-contract sites)",
            live.len()
        );
        Ok(false)
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut local = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            local.push(path);
        }
    }
    local.sort();
    out.extend(local);
    Ok(())
}

fn load_source(root: &Path, path: &Path) -> Result<SourceFile, String> {
    let raw =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let mut masked = mask_source(&raw);
    strip_test_regions(&mut masked);
    Ok(SourceFile {
        rel,
        lines: raw.lines().map(str::to_owned).collect(),
        masked,
    })
}

// ---------------------------------------------------------------------------
// Lexical masking
// ---------------------------------------------------------------------------

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn byte_at(s: &[u8], i: usize) -> u8 {
    s.get(i).copied().unwrap_or(0)
}

/// Returns a same-length copy of `src` with comments and string/char
/// literals blanked to spaces (newlines kept), so later substring checks
/// never fire inside text.
fn mask_source(src: &str) -> Vec<u8> {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let blank = |out: &mut Vec<u8>, byte: u8| out.push(if byte == b'\n' { b'\n' } else { b' ' });
    let mut i = 0;
    while i < b.len() {
        let c = byte_at(b, i);
        // Line comment (also covers `///` and `//!` doc comments).
        if c == b'/' && byte_at(b, i + 1) == b'/' {
            while i < b.len() && byte_at(b, i) != b'\n' {
                blank(&mut out, byte_at(b, i));
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && byte_at(b, i + 1) == b'*' {
            let mut depth = 0usize;
            while i < b.len() {
                if byte_at(b, i) == b'/' && byte_at(b, i + 1) == b'*' {
                    depth += 1;
                    blank(&mut out, byte_at(b, i));
                    blank(&mut out, byte_at(b, i + 1));
                    i += 2;
                } else if byte_at(b, i) == b'*' && byte_at(b, i + 1) == b'/' {
                    depth -= 1;
                    blank(&mut out, byte_at(b, i));
                    blank(&mut out, byte_at(b, i + 1));
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, byte_at(b, i));
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (not part of an ident).
        let prev_ident = i > 0 && is_ident(byte_at(b, i - 1));
        if !prev_ident && (c == b'r' || (c == b'b' && byte_at(b, i + 1) == b'r')) {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while byte_at(b, j) == b'#' {
                hashes += 1;
                j += 1;
            }
            if byte_at(b, j) == b'"' {
                // Blank from `i` to the closing quote + hashes.
                j += 1;
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if byte_at(b, j) == b'"' {
                        let mut k = 0;
                        while k < hashes && byte_at(b, j + 1 + k) == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                    }
                    j += 1;
                }
                while i < j {
                    blank(&mut out, byte_at(b, i));
                    i += 1;
                }
                continue;
            }
        }
        // Plain and byte strings.
        if c == b'"' || (c == b'b' && byte_at(b, i + 1) == b'"' && !prev_ident) {
            if c == b'b' {
                blank(&mut out, c);
                i += 1;
            }
            blank(&mut out, byte_at(b, i));
            i += 1;
            while i < b.len() {
                let s = byte_at(b, i);
                if s == b'\\' {
                    blank(&mut out, s);
                    blank(&mut out, byte_at(b, i + 1));
                    i += 2;
                } else {
                    blank(&mut out, s);
                    i += 1;
                    if s == b'"' {
                        break;
                    }
                }
            }
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' || (c == b'b' && byte_at(b, i + 1) == b'\'' && !prev_ident) {
            let q = if c == b'b' { i + 1 } else { i };
            // A lifetime is `'ident` NOT followed by a closing quote.
            let mut j = q + 1;
            while is_ident(byte_at(b, j)) {
                j += 1;
            }
            let is_lifetime = c == b'\'' && j > q + 1 && byte_at(b, j) != b'\'';
            if is_lifetime {
                out.push(c);
                i += 1;
                continue;
            }
            // Char literal: handle escapes, then blank through closing quote.
            let mut j = q + 1;
            if byte_at(b, j) == b'\\' {
                j += 2;
                // Escapes like \x7f and \u{..} extend further.
                while j < b.len() && byte_at(b, j) != b'\'' {
                    j += 1;
                }
            } else {
                while j < b.len() && byte_at(b, j) != b'\'' {
                    j += 1;
                }
            }
            j += 1; // past the closing quote
            while i < j && i < b.len() {
                blank(&mut out, byte_at(b, i));
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blanks every `#[cfg(test)]`-gated item (attribute through the matching
/// closing brace, or through `;` for brace-less items) in `masked`.
fn strip_test_regions(masked: &mut [u8]) {
    const NEEDLE: &[u8] = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = find_from(masked, NEEDLE, from) {
        let mut j = pos + NEEDLE.len();
        // Scan to the item's `{` (brace-matched) or `;`, whichever first.
        let mut open = None;
        while j < masked.len() {
            match byte_at(masked, j) {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(open) => {
                let mut depth = 0usize;
                let mut k = open;
                while k < masked.len() {
                    match byte_at(masked, k) {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k
            }
            None => j,
        };
        for slot in masked.iter_mut().take(end + 1).skip(pos) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
        from = end + 1;
    }
}

/// First occurrence of `needle` in `hay` at or after `from`.
fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    hay.get(from..)?
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// 1-based line number of byte offset `pos`.
fn line_of(masked: &[u8], pos: usize) -> usize {
    1 + masked
        .get(..pos)
        .map_or(0, |s| s.iter().filter(|&&b| b == b'\n').count())
}

/// Original source line at 1-based `line`, trimmed.
fn excerpt(file: &SourceFile, line: usize) -> String {
    file.lines
        .get(line.saturating_sub(1))
        .map_or(String::new(), |l| l.trim().to_owned())
}

fn prev_non_ws(masked: &[u8], mut i: usize) -> Option<usize> {
    while i > 0 {
        i -= 1;
        if !byte_at(masked, i).is_ascii_whitespace() {
            return Some(i);
        }
    }
    None
}

fn next_non_ws(masked: &[u8], mut i: usize) -> Option<usize> {
    while i < masked.len() {
        if !byte_at(masked, i).is_ascii_whitespace() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// The identifier ending at byte `end` (inclusive), if any.
fn ident_ending_at(masked: &[u8], end: usize) -> String {
    let mut start = end;
    while start > 0 && is_ident(byte_at(masked, start - 1)) {
        start -= 1;
    }
    masked
        .get(start..=end)
        .map_or(String::new(), |s| String::from_utf8_lossy(s).into_owned())
}

/// The identifier starting at byte `start`, if any.
fn ident_starting_at(masked: &[u8], start: usize) -> String {
    let mut end = start;
    while end < masked.len() && is_ident(byte_at(masked, end)) {
        end += 1;
    }
    masked
        .get(start..end)
        .map_or(String::new(), |s| String::from_utf8_lossy(s).into_owned())
}

// ---------------------------------------------------------------------------
// Rule family 1: panic-freedom
// ---------------------------------------------------------------------------

fn check_panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    let m = &file.masked;
    let mut push = |pos: usize, rule: &'static str| {
        let line = line_of(m, pos);
        out.push(Violation {
            file: file.rel.clone(),
            line,
            rule,
            excerpt: excerpt(file, line),
        });
    };

    // `.unwrap()` / `.expect(...)` method calls.
    for (needle, rule) in [(&b".unwrap"[..], "unwrap"), (&b".expect"[..], "expect")] {
        let mut from = 0;
        while let Some(pos) = find_from(m, needle, from) {
            from = pos + needle.len();
            if is_ident(byte_at(m, from)) {
                continue; // `.unwrap_or(..)`, `.expect_err(..)`, ...
            }
            if next_non_ws(m, from).map(|i| byte_at(m, i)) == Some(b'(') {
                push(pos, rule);
            }
        }
    }

    // Aborting macros.
    for needle in [
        &b"panic!"[..],
        &b"unreachable!"[..],
        &b"todo!"[..],
        &b"unimplemented!"[..],
    ] {
        let mut from = 0;
        while let Some(pos) = find_from(m, needle, from) {
            from = pos + needle.len();
            if pos > 0 && is_ident(byte_at(m, pos - 1)) {
                continue;
            }
            push(pos, "panic-macro");
        }
    }

    // Slice / Vec indexing: `expr[...]` where expr ends in an identifier,
    // `)`, or `]` — array literals, types, patterns and attributes all have
    // a non-expression byte (or a keyword) before the `[`.
    let mut i = 0;
    while i < m.len() {
        if byte_at(m, i) == b'[' {
            if let Some(p) = prev_non_ws(m, i) {
                let pb = byte_at(m, p);
                let is_index = if pb == b')' || pb == b']' {
                    true
                } else if is_ident(pb) {
                    let word = ident_ending_at(m, p);
                    !NON_INDEX_KEYWORDS.contains(&word.as_str())
                } else {
                    false
                };
                if is_index {
                    push(i, "indexing");
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule family 2: paper invariants
// ---------------------------------------------------------------------------

/// Byte span (inclusive braces) of the body of `fn <name>` in `masked`.
fn fn_body_span(masked: &[u8], name: &str) -> Option<(usize, usize)> {
    let needle: Vec<u8> = format!("fn {name}").into_bytes();
    let pos = find_from(masked, &needle, 0)?;
    let open = find_from(masked, b"{", pos)?;
    let mut depth = 0usize;
    let mut k = open;
    while k < masked.len() {
        match byte_at(masked, k) {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Header-mutation discipline: `failed_links` / `cross_links` may be
/// mutated (or assigned) only inside the typed setters of
/// `crates/sim/src/header.rs`, and the fields must stay private.
fn check_header_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let m = &file.masked;
    let is_header = file.rel == "crates/sim/src/header.rs";
    let setter_spans: Vec<(usize, usize)> = if is_header {
        ["record_failed_link", "record_cross_link"]
            .iter()
            .filter_map(|f| fn_body_span(m, f))
            .collect()
    } else {
        Vec::new()
    };

    if is_header {
        for needle in [&b"pub failed_links"[..], &b"pub cross_links"[..]] {
            if let Some(pos) = find_from(m, needle, 0) {
                let line = line_of(m, pos);
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    rule: "header-privacy",
                    excerpt: excerpt(file, line),
                });
            }
        }
    }

    for field in [&b"failed_links"[..], &b"cross_links"[..]] {
        let mut from = 0;
        while let Some(pos) = find_from(m, field, from) {
            from = pos + field.len();
            if (pos > 0 && is_ident(byte_at(m, pos - 1))) || is_ident(byte_at(m, from)) {
                continue; // part of a longer identifier
            }
            let Some(nxt) = next_non_ws(m, from) else {
                continue;
            };
            let mutation = match byte_at(m, nxt) {
                b'.' => {
                    let method = next_non_ws(m, nxt + 1)
                        .map(|i| ident_starting_at(m, i))
                        .unwrap_or_default();
                    MUTATORS.contains(&method.as_str())
                }
                b'=' => byte_at(m, nxt + 1) != b'=',
                _ => false,
            };
            if !mutation {
                continue;
            }
            let in_setter = setter_spans.iter().any(|&(a, b)| pos >= a && pos <= b);
            if !in_setter {
                let line = line_of(m, pos);
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    rule: "header-mutation",
                    excerpt: excerpt(file, line),
                });
            }
        }
    }
}

/// Exact floating-point equality: flags `==` / `!=` where either operand is
/// a float literal or an identifier annotated `: f64` in the same file.
fn check_float_eq(file: &SourceFile, out: &mut Vec<Violation>) {
    let m = &file.masked;

    // Identifiers declared `: f64` (params, fields, lets) in this file.
    let mut f64_idents: BTreeSet<String> = BTreeSet::new();
    let mut from = 0;
    while let Some(pos) = find_from(m, b"f64", from) {
        from = pos + 3;
        if (pos > 0 && is_ident(byte_at(m, pos - 1))) || is_ident(byte_at(m, pos + 3)) {
            continue;
        }
        let Some(colon) = prev_non_ws(m, pos) else {
            continue;
        };
        if byte_at(m, colon) != b':' || (colon > 0 && byte_at(m, colon - 1) == b':') {
            continue; // not a type ascription (`::` is a path)
        }
        if let Some(name_end) = prev_non_ws(m, colon) {
            let name = ident_ending_at(m, name_end);
            if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                f64_idents.insert(name);
            }
        }
    }

    let operand_token = |s: &str| -> String {
        s.chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
            .collect()
    };
    let is_float_literal =
        |tok: &str| tok.chars().next().is_some_and(|c| c.is_ascii_digit()) && tok.contains('.');
    let is_f64_ident = |tok: &str| {
        let last = tok.rsplit('.').next().unwrap_or(tok);
        f64_idents.contains(last)
    };

    for op in [&b"=="[..], &b"!="[..]] {
        let mut from = 0;
        while let Some(pos) = find_from(m, op, from) {
            from = pos + 2;
            // Not part of `<=`, `>=`, `=>`, `===`-like runs or `!=`-vs-`==`.
            let before = if pos > 0 { byte_at(m, pos - 1) } else { 0 };
            if matches!(before, b'=' | b'!' | b'<' | b'>') || byte_at(m, pos + 2) == b'=' {
                continue;
            }
            let left = prev_non_ws(m, pos).map_or(String::new(), |p| {
                let mut start = p;
                while start > 0 {
                    let c = byte_at(m, start - 1);
                    if is_ident(c) || c == b'.' {
                        start -= 1;
                    } else {
                        break;
                    }
                }
                if is_ident(byte_at(m, p)) {
                    m.get(start..=p)
                        .map_or(String::new(), |s| String::from_utf8_lossy(s).into_owned())
                } else {
                    String::new()
                }
            });
            let right = next_non_ws(m, pos + 2).map_or(String::new(), |p| {
                m.get(p..).map_or(String::new(), |s| {
                    operand_token(&String::from_utf8_lossy(s))
                })
            });
            let flagged = is_float_literal(&left)
                || is_float_literal(&right)
                || is_f64_ident(&left)
                || is_f64_ident(&right);
            if flagged {
                let line = line_of(m, pos);
                out.push(Violation {
                    file: file.rel.clone(),
                    line,
                    rule: "float-eq",
                    excerpt: excerpt(file, line),
                });
            }
        }
    }
}

/// The one file allowed to create threads: the fork-join executor.
const THREAD_EXECUTOR: &str = "crates/eval/src/par.rs";

/// Thread discipline: `thread::spawn` / `thread::scope` only inside the
/// executor module. Everything else must go through `rtr_eval::par`, so
/// the scenario-order merge stays the single determinism argument.
fn check_thread_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == THREAD_EXECUTOR {
        return;
    }
    let m = &file.masked;
    for needle in [&b"thread::spawn"[..], &b"thread::scope"[..]] {
        let mut from = 0;
        while let Some(pos) = find_from(m, needle, from) {
            from = pos + needle.len();
            let line = line_of(m, pos);
            out.push(Violation {
                file: file.rel.clone(),
                line,
                rule: "thread-discipline",
                excerpt: excerpt(file, line),
            });
        }
    }
}

/// The one file allowed to name CPU intrinsics: the crossing-mask kernel
/// module, whose safe `MaskKernel` dispatch wraps the AVX2 path.
const SIMD_KERNEL_MODULE: &str = "crates/topology/src/kernels.rs";

/// SIMD discipline: `std::arch` / `core::arch` tokens only inside the
/// kernel module. Every intrinsic (and the `unsafe` it drags along) stays
/// behind one safe, feature-detected dispatch point, so the rest of the
/// workspace remains portable stable Rust.
fn check_simd_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == SIMD_KERNEL_MODULE {
        return;
    }
    let m = &file.masked;
    for needle in [&b"std::arch"[..], &b"core::arch"[..]] {
        let mut from = 0;
        while let Some(pos) = find_from(m, needle, from) {
            from = pos + needle.len();
            let line = line_of(m, pos);
            out.push(Violation {
                file: file.rel.clone(),
                line,
                rule: "simd-discipline",
                excerpt: excerpt(file, line),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule family 5: link-set membership (bitset discipline)
// ---------------------------------------------------------------------------

/// The crate whose non-test code must do link-set membership through the
/// word-parallel bitset API (`LinkIdSet::contains`, `LinkBitSet`,
/// `CrossLinkTable::crossing_mask`): `rtr-core` holds the phase-1 sweep
/// hot path, where a linear scan hides O(|set|) work per probe.
const LINKSET_CRATE_PREFIX: &str = "crates/core/";

/// Flags linear membership idioms in `rtr-core` non-test code:
/// `.iter().any(` chains (whitespace-tolerant, so rustfmt-split chains
/// still match) and reference-taking `.contains(&` (slice/`Vec`
/// membership borrows its argument, while the bitset APIs take `LinkId`
/// by value — a clean lexical split between the two).
fn check_linkset_membership(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel.starts_with(LINKSET_CRATE_PREFIX) {
        return;
    }
    let m = &file.masked;
    let mut push = |pos: usize| {
        let line = line_of(m, pos);
        out.push(Violation {
            file: file.rel.clone(),
            line,
            rule: "linkset-membership",
            excerpt: excerpt(file, line),
        });
    };

    // `.iter()` followed (across whitespace) by `.any(`. Anchored on the
    // `any` token so the excerpt shows the predicate, not the receiver.
    let mut from = 0;
    while let Some(pos) = find_from(m, b".iter()", from) {
        from = pos + b".iter()".len();
        let Some(dot) = next_non_ws(m, from) else {
            continue;
        };
        if byte_at(m, dot) != b'.' {
            continue;
        }
        let Some(name) = next_non_ws(m, dot + 1) else {
            continue;
        };
        if ident_starting_at(m, name) == "any" && byte_at(m, name + 3) == b'(' {
            push(name);
        }
    }

    // `.contains(&x)` — the borrowing form is always a linear scan.
    let mut from = 0;
    while let Some(pos) = find_from(m, b".contains(", from) {
        from = pos + b".contains(".len();
        if next_non_ws(m, from).map(|i| byte_at(m, i)) == Some(b'&') {
            push(pos);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule family 7: print discipline (hot-path crates emit via TraceSink only)
// ---------------------------------------------------------------------------

/// Macros that would write to stdout/stderr behind the observability
/// layer's back.
const PRINT_MACROS: [&[u8]; 5] = [b"println!", b"eprintln!", b"print!", b"eprint!", b"dbg!"];

/// Print discipline: non-test code of the hot-path crates must not write
/// to stdout/stderr directly. Event emission is confined to
/// `rtr_obs::TraceSink` calls, so instrumented runs and the `--trace`
/// replay observe everything the hot path reports (DESIGN.md §10) and the
/// eval writer funnel keeps sole ownership of the process streams.
fn check_print_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let m = &file.masked;
    for needle in PRINT_MACROS {
        let mut from = 0;
        while let Some(pos) = find_from(m, needle, from) {
            from = pos + needle.len();
            if pos > 0 && is_ident(byte_at(m, pos - 1)) {
                continue; // `println!` seen inside `eprintln!`, `_dbg!`, ...
            }
            let line = line_of(m, pos);
            out.push(Violation {
                file: file.rel.clone(),
                line,
                rule: "print-discipline",
                excerpt: excerpt(file, line),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule family 3: theorem coverage
// ---------------------------------------------------------------------------

fn check_theorem_coverage(root: &Path, out: &mut Vec<Violation>) -> Result<(), String> {
    let design_path = root.join("DESIGN.md");
    let design =
        fs::read_to_string(&design_path).map_err(|e| format!("cannot read DESIGN.md: {e}"))?;
    let mut theorems: BTreeSet<u32> = BTreeSet::new();
    for (idx, _) in design.match_indices("Theorem ") {
        let digits: String = design
            .get(idx + 8..)
            .unwrap_or("")
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(n) = digits.parse() {
            theorems.insert(n);
        }
    }
    if theorems.is_empty() {
        return Err("DESIGN.md names no theorems — audit cannot run".into());
    }

    let tests_path = root.join("crates/core/tests/theorems.rs");
    let tests =
        fs::read_to_string(&tests_path).map_err(|e| format!("cannot read theorems.rs: {e}"))?;
    let mut test_names: BTreeSet<String> = BTreeSet::new();
    for (idx, _) in tests.match_indices("#[test]") {
        if let Some(fn_pos) = tests.get(idx..).and_then(|s| s.find("fn ")) {
            let name: String = tests
                .get(idx + fn_pos + 3..)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                test_names.insert(name);
            }
        }
    }

    for n in theorems {
        let tag = format!("theorem{n}");
        if !test_names.iter().any(|t| t.contains(&tag)) {
            out.push(Violation {
                file: "DESIGN.md".into(),
                line: 0,
                rule: "theorem-coverage",
                excerpt: format!(
                    "Theorem {n} has no `#[test]` in crates/core/tests/theorems.rs \
                     whose name contains `{tag}`"
                ),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Parses `allow.toml` — a flat sequence of `[[allow]]` tables with string
/// keys `file`, `rule`, `pattern`, `justification` (a deliberate TOML
/// subset; this workspace vendors no TOML parser).
fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("allow.toml line {}: {what}", lineno + 1);
        if line == "[[allow]]" {
            entries.push(AllowEntry::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected `key = \"value\"` or `[[allow]]`"));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| err("value must be a double-quoted string"))?
            .replace("\\\"", "\"");
        let Some(entry) = entries.last_mut() else {
            return Err(err("key outside any [[allow]] table"));
        };
        match key {
            "file" => entry.file = value,
            "rule" => entry.rule = value,
            "pattern" => entry.pattern = value,
            "justification" => entry.justification = value,
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if e.file.is_empty() || e.rule.is_empty() || e.pattern.is_empty() {
            return Err(format!(
                "allow.toml entry {} is missing file/rule/pattern",
                i + 1
            ));
        }
        if e.justification.trim().is_empty() {
            return Err(format!(
                "allow.toml entry {} ({} / {}) has no justification — every \
                 exemption must say why it is sound",
                i + 1,
                e.file,
                e.rule
            ));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> Vec<u8> {
        let mut m = mask_source(src);
        strip_test_regions(&mut m);
        m
    }

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            lines: src.lines().map(str::to_owned).collect(),
            masked: masked(src),
        }
    }

    #[test]
    fn masking_blanks_strings_and_comments() {
        let m = masked("let x = \"a.unwrap()\"; // b.unwrap()\n/* c[0] */ let y = 1;");
        let s = String::from_utf8_lossy(&m);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("c[0]"));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn masking_keeps_lifetimes_but_blanks_chars() {
        let m = masked("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let s = String::from_utf8_lossy(&m);
        assert!(s.contains("<'a>"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn test_regions_are_stripped() {
        let m = masked("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n");
        let s = String::from_utf8_lossy(&m);
        assert!(s.contains("fn live"));
        assert!(!s.contains("unwrap"));
    }

    #[test]
    fn panic_freedom_flags_all_constructs() {
        let src = "fn f(v: Vec<u32>) {\n  v.first().unwrap();\n  v.last().expect(\"x\");\n  \
                   panic!(\"boom\");\n  let _ = v[0];\n}\n";
        let mut out = Vec::new();
        check_panic_freedom(&file("x.rs", src), &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "panic-macro", "indexing"]);
    }

    #[test]
    fn panic_freedom_ignores_lookalikes() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> Vec<u32> {\n  let _ = o.unwrap_or(3);\n  \
                   for x in [1, 2] { let _ = x; }\n  let a: [u8; 2] = [0; 2];\n  \
                   let _ = &a;\n  v.to_vec()\n}\n";
        let mut out = Vec::new();
        check_panic_freedom(&file("x.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn chained_and_paren_indexing_is_flagged() {
        let src = "fn f(v: &Vec<Vec<u32>>) { let _ = v[0][1]; let _ = (v.clone())[0]; }";
        let mut out = Vec::new();
        check_panic_freedom(&file("x.rs", src), &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn header_mutation_outside_setter_is_flagged() {
        let src = "fn f(h: &mut H) { h.failed_links.insert(l); h.cross_links().len(); }";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.rule), Some("header-mutation"));
    }

    #[test]
    fn header_setters_themselves_are_allowed() {
        let src = "impl H {\n  pub fn record_failed_link(&mut self, l: L) -> bool {\n    \
                   self.failed_links.insert(l)\n  }\n  \
                   pub fn record_cross_link(&mut self, l: L) -> bool {\n    \
                   self.cross_links.insert(l)\n  }\n}\n";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/sim/src/header.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn float_eq_flags_literals_and_f64_idents() {
        let src = "fn f(w: f64, n: u32) {\n  let _ = w == 0.5;\n  let _ = n == 3;\n}\n";
        let mut out = Vec::new();
        check_float_eq(&file("x.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.line), Some(2));
    }

    #[test]
    fn float_eq_ignores_integer_and_enum_comparisons() {
        let src = "fn f(a: usize, b: usize) -> bool { a == b && a != b + 1 }";
        let mut out = Vec::new();
        check_float_eq(&file("x.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn thread_discipline_flags_spawns_outside_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); thread::scope(|s| {}); }";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.rule == "thread-discipline"));
    }

    #[test]
    fn thread_discipline_exempts_the_executor_module() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/eval/src/par.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn simd_discipline_flags_intrinsics_outside_the_kernel_module() {
        let src = "fn f() {\n  use std::arch::x86_64::_mm256_and_si256;\n  \
                   let _ = core::arch::x86_64::_mm_and_si128;\n}\n";
        let mut out = Vec::new();
        check_simd_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.rule == "simd-discipline"));
    }

    #[test]
    fn simd_discipline_exempts_the_kernel_module_and_comments() {
        let src = "fn f() { let _ = std::arch::is_x86_feature_detected!(\"avx2\"); }";
        let mut out = Vec::new();
        check_simd_discipline(&file("crates/topology/src/kernels.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");

        // Doc comments naming `std::arch` are masked before matching.
        let doc = "//! Kernels use `std::arch` elsewhere.\nfn f() {}\n";
        check_simd_discipline(&file("crates/core/src/x.rs", doc), &mut out);
        assert!(out.is_empty(), "comment text flagged: {out:?}");
    }

    #[test]
    fn linkset_membership_flags_linear_scans_in_core() {
        let src =
            "fn f(v: &[L], s: &Set, x: L) -> bool {\n  v\n    .iter()\n    .any(|&l| l == x)\n  \
                   || v.contains(&x)\n}\n";
        let mut out = Vec::new();
        check_linkset_membership(&file("crates/core/src/x.rs", src), &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["linkset-membership"; 2], "got: {out:?}");
        // Split chains anchor on the `.any(` line.
        assert_eq!(out.first().map(|v| v.line), Some(4));
    }

    #[test]
    fn linkset_membership_ignores_bitset_api_and_other_crates() {
        // Value-taking `contains` is the bitset API; `.iter().map(` is not
        // a membership scan; test regions and other crates are exempt.
        let core_ok = "fn f(h: &H, l: L) -> bool {\n  h.cross_links().contains(l)\n    \
                       && h.ids().iter().map(|x| x.0).count() > 0\n}\n\
                       #[cfg(test)]\nmod tests {\n  fn t(v: &[L], x: L) {\n    \
                       assert!(v.iter().any(|&l| l == x) || v.contains(&x));\n  }\n}\n";
        let mut out = Vec::new();
        check_linkset_membership(&file("crates/core/src/x.rs", core_ok), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");

        let eval = "fn f(v: &[L], x: L) -> bool { v.iter().any(|&l| l == x) || v.contains(&x) }";
        check_linkset_membership(&file("crates/eval/src/x.rs", eval), &mut out);
        assert!(out.is_empty(), "rule leaked outside crates/core: {out:?}");
    }

    #[test]
    fn print_discipline_flags_every_print_macro_once() {
        let src = "fn f(x: u32) {\n  println!(\"{x}\");\n  eprintln!(\"{x}\");\n  \
                   print!(\"{x}\");\n  eprint!(\"{x}\");\n  let _ = dbg!(x);\n}\n";
        let mut out = Vec::new();
        check_print_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 5, "got: {out:?}");
        assert!(out.iter().all(|v| v.rule == "print-discipline"));
        let lines: Vec<usize> = {
            let mut l: Vec<usize> = out.iter().map(|v| v.line).collect();
            l.sort_unstable();
            l
        };
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn print_discipline_ignores_comments_strings_and_tests() {
        let src = "//! `println!` is banned here.\n\
                   fn f() { let _ = \"println!(not code)\"; }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { println!(\"ok in tests\"); }\n}\n";
        let mut out = Vec::new();
        check_print_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn json_reader_handles_the_recorder_schema() {
        let doc = json_parse(
            "{\n  \"host_parallelism\": 8,\n  \"topologies\": [\n    \
             {\"name\": \"AS3549\", \"serial_secs\": 0.0713, \"sweep_secs\": 1.5e-3},\n    \
             {\"name\": \"AS209\", \"serial_secs\": 0.0014, \"sweep_secs\": 0.0002}\n  ]\n}",
        )
        .unwrap();
        let rows = doc.get("topologies").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("name").and_then(JsonValue::as_str),
            Some("AS3549")
        );
        assert_eq!(
            rows[0].get("sweep_secs").and_then(JsonValue::as_f64),
            Some(1.5e-3)
        );
        assert_eq!(
            doc.get("host_parallelism").and_then(JsonValue::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn json_reader_rejects_garbage() {
        assert!(json_parse("{\"a\": }").is_err());
        assert!(json_parse("[1, 2").is_err());
        assert!(json_parse("{} trailing").is_err());
        assert!(json_parse("\"unterminated").is_err());
        // Literals and escapes round-trip.
        assert_eq!(json_parse("null").unwrap(), JsonValue::Null);
        assert_eq!(json_parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            json_parse("\"a\\\"b\"").unwrap(),
            JsonValue::Str("a\"b".into())
        );
        assert_eq!(json_parse("-2.5e1").unwrap(), JsonValue::Num(-25.0));
    }

    #[test]
    fn allowlist_parser_round_trips() {
        let dir = std::env::temp_dir().join("xtask-allow-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("allow.toml");
        fs::write(
            &p,
            "# comment\n[[allow]]\nfile = \"a.rs\"\nrule = \"unwrap\"\n\
             pattern = \"x.unwrap()\"\njustification = \"because\"\n",
        )
        .unwrap();
        let entries = load_allowlist(&p).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "unwrap");
        fs::write(
            &p,
            "[[allow]]\nfile = \"a.rs\"\nrule = \"r\"\npattern = \"p\"\n",
        )
        .unwrap();
        assert!(
            load_allowlist(&p).is_err(),
            "missing justification accepted"
        );
    }
}
