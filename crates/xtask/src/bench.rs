//! `cargo xtask bench-record` / `bench-check` / `bench-scale` /
//! `bench-serve`: regenerate and validate the committed
//! `BENCH_eval.json`, `BENCH_scale.json`, and `BENCH_serve.json`.

use crate::json::{json_parse, JsonValue};
use std::fs;
use std::path::Path;

/// Schema tag the scale recorder writes and the checker requires.
pub const SCALE_SCHEMA: &str = "bench-scale-v1";

/// Minimum sweep points a full (non-smoke) `BENCH_scale.json` must carry
/// (every generator × size combination the recorder doesn't skip).
pub const SCALE_MIN_POINTS: usize = 12;

/// A full sweep must reach at least this many nodes (the 100k tier, with
/// slack for generators whose construction rounds the node count).
pub const SCALE_MIN_MAX_NODES: f64 = 90_000.0;

/// Hard ceiling on any recorded grid-indexed cross-link build: the whole
/// point of the spatial index is that even the 100k-node tier builds in
/// seconds, not the hours the all-pairs scan would take.
pub const SCALE_MAX_CROSSLINK_SECS: f64 = 120.0;

/// Schema tag the `loadgen --sweep` recorder writes and the checker
/// requires in `BENCH_serve.json`.
pub const SERVE_SCHEMA: &str = "bench-serve-v1";

/// Schema tag the churn recorder writes and the checker requires in
/// `BENCH_churn.json`.
pub const CHURN_SCHEMA: &str = "bench-churn-v1";

/// Minimum timeline workloads a full (non-smoke) `BENCH_churn.json`
/// must carry (the recorder sweeps two churn twins plus a moving front).
pub const CHURN_MIN_POINTS: usize = 2;

/// Minimum best-multi-worker over one-worker throughput ratio (saturated,
/// in-process) a sweep recorded on a host with at least
/// [`SERVE_SPEEDUP_MIN_HOST`] cores must show.
pub const SERVE_MIN_SPEEDUP: f64 = 1.5;

/// Host parallelism below which the serve speedup gate only warns: on a
/// one- or two-core recorder the extra workers time-slice one another and
/// the ratio says nothing about the session pool.
pub const SERVE_SPEEDUP_MIN_HOST: f64 = 4.0;

/// One topology row of `BENCH_eval.json`, as `bench-check` reads it.
#[derive(Debug)]
pub struct BenchRow {
    /// Topology name (e.g. `AS3549`).
    pub name: String,
    /// Quick-workload serial wall time.
    pub serial_secs: f64,
    /// Phase-1 sweep wall time.
    pub sweep_secs: f64,
    /// Recorded serial/parallel speedup, when present.
    pub speedup: Option<f64>,
}

/// The parts of `BENCH_eval.json` that `bench-check` validates.
#[derive(Debug)]
pub struct BenchFile {
    /// `std::thread::available_parallelism()` on the recording host.
    pub host_parallelism: Option<f64>,
    /// Thread count the parallel measurement ran with.
    pub parallel_threads: Option<f64>,
    /// Per-topology rows.
    pub rows: Vec<BenchRow>,
}

/// Reads `path` and extracts the per-topology rows, failing if the file
/// does not parse as JSON or any row lacks a numeric `serial_secs` or
/// `sweep_secs` field (the recorder's schema).
///
/// # Errors
///
/// Reports the missing field or parse error with the file's path.
pub fn parse_bench_file(path: &Path) -> Result<BenchFile, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let topologies = doc
        .get("topologies")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `topologies` array", path.display()))?;
    if topologies.is_empty() {
        return Err(format!("{}: `topologies` is empty", path.display()));
    }
    let mut rows = Vec::new();
    for (i, row) in topologies.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: row {i} has no string `name`", path.display()))?
            .to_owned();
        let serial_secs = row
            .get("serial_secs")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: row `{name}` has no numeric `serial_secs`",
                    path.display()
                )
            })?;
        let sweep_secs = row
            .get("sweep_secs")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| {
                format!(
                    "{}: row `{name}` has no numeric `sweep_secs`",
                    path.display()
                )
            })?;
        let speedup = row.get("speedup").and_then(JsonValue::as_f64);
        rows.push(BenchRow {
            name,
            serial_secs,
            sweep_secs,
            speedup,
        });
    }
    Ok(BenchFile {
        host_parallelism: doc.get("host_parallelism").and_then(JsonValue::as_f64),
        parallel_threads: doc.get("parallel_threads").and_then(JsonValue::as_f64),
        rows,
    })
}

/// One sweep point of `BENCH_scale.json`, as the checker reads it.
#[derive(Debug)]
pub struct ScalePoint {
    /// Generator name (e.g. `waxman`).
    pub generator: String,
    /// Node count of the point.
    pub nodes: f64,
    /// Link count of the point.
    pub links: f64,
    /// Grid-indexed cross-link table build wall time.
    pub crosslink_secs: f64,
}

/// Reads a `BENCH_scale.json` and validates its schema: the
/// [`SCALE_SCHEMA`] tag, a non-empty `points` array, and per point a
/// string `generator` plus numeric `nodes`, `links`, `build_secs`,
/// `crosslink_secs`, `sweep_secs`, `recover_secs`, and `peak_rss_mb`.
/// With `require_full`, additionally enforces the full-sweep floor:
/// at least [`SCALE_MIN_POINTS`] points, a maximum node count of at
/// least [`SCALE_MIN_MAX_NODES`], and every `crosslink_secs` under
/// [`SCALE_MAX_CROSSLINK_SECS`].
///
/// # Errors
///
/// Reports the first missing field, schema mismatch, or floor violation
/// with the file's path.
pub fn parse_scale_file(path: &Path, require_full: bool) -> Result<Vec<ScalePoint>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(SCALE_SCHEMA) {
        return Err(format!(
            "{}: schema {schema:?} is not {SCALE_SCHEMA:?}",
            path.display()
        ));
    }
    let raw = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `points` array", path.display()))?;
    if raw.is_empty() {
        return Err(format!("{}: `points` is empty", path.display()));
    }
    let mut points = Vec::new();
    for (i, p) in raw.iter().enumerate() {
        let generator = p
            .get("generator")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: point {i} has no string `generator`", path.display()))?
            .to_owned();
        let num = |field: &str| {
            p.get(field).and_then(JsonValue::as_f64).ok_or_else(|| {
                format!(
                    "{}: point {i} (`{generator}`) has no numeric `{field}`",
                    path.display()
                )
            })
        };
        // Fields not carried in `ScalePoint` are still schema-required.
        for field in ["build_secs", "sweep_secs", "recover_secs", "peak_rss_mb"] {
            num(field)?;
        }
        points.push(ScalePoint {
            nodes: num("nodes")?,
            links: num("links")?,
            crosslink_secs: num("crosslink_secs")?,
            generator,
        });
    }
    if require_full {
        if points.len() < SCALE_MIN_POINTS {
            return Err(format!(
                "{}: full sweep has {} points, need at least {SCALE_MIN_POINTS}",
                path.display(),
                points.len()
            ));
        }
        let max_nodes = points.iter().map(|p| p.nodes).fold(0.0, f64::max);
        if max_nodes < SCALE_MIN_MAX_NODES {
            return Err(format!(
                "{}: full sweep tops out at {max_nodes:.0} nodes, need at least \
                 {SCALE_MIN_MAX_NODES:.0}",
                path.display()
            ));
        }
        for p in &points {
            if p.crosslink_secs > SCALE_MAX_CROSSLINK_SECS {
                return Err(format!(
                    "{}: `{}` at {:.0} nodes took {:.1}s to build its cross-link \
                     table (ceiling {SCALE_MAX_CROSSLINK_SECS:.0}s) — the spatial \
                     index is not doing its job",
                    path.display(),
                    p.generator,
                    p.nodes,
                    p.crosslink_secs
                ));
            }
        }
    }
    Ok(points)
}

/// One timeline workload of `BENCH_churn.json`, as the checker reads it.
#[derive(Debug)]
pub struct ChurnPoint {
    /// Workload name (e.g. `AS1239-churn`).
    pub name: String,
    /// Timeline length in events.
    pub events: f64,
    /// Median per-event wall time of the incremental baseline patch.
    pub incremental_median_secs: f64,
    /// Median per-event wall time of the from-scratch rebuild oracle.
    pub rebuild_median_secs: f64,
}

/// Reads a `BENCH_churn.json` and validates its schema: the
/// [`CHURN_SCHEMA`] tag, a non-empty `points` array, per point the key
/// set the recorder writes, `oracle_checked` set on every point (the
/// recorder refuses to record an unverified patch), and — the headline
/// gate — *incremental median ≤ rebuild median* per workload: if patching
/// the believed state in place is not cheaper than recomputing it, the
/// incremental machinery has regressed. With `require_full`, additionally
/// requires at least [`CHURN_MIN_POINTS`] workloads.
///
/// # Errors
///
/// Reports the first missing field, schema mismatch, unverified point, or
/// median inversion with the file's path.
pub fn parse_churn_file(path: &Path, require_full: bool) -> Result<Vec<ChurnPoint>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(CHURN_SCHEMA) {
        return Err(format!(
            "{}: schema {schema:?} is not {CHURN_SCHEMA:?}",
            path.display()
        ));
    }
    let raw = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `points` array", path.display()))?;
    if raw.is_empty() {
        return Err(format!("{}: `points` is empty", path.display()));
    }
    let mut points = Vec::new();
    for (i, p) in raw.iter().enumerate() {
        let name = p
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{}: point {i} has no string `name`", path.display()))?
            .to_owned();
        let num = |field: &str| {
            p.get(field).and_then(JsonValue::as_f64).ok_or_else(|| {
                format!(
                    "{}: point {i} (`{name}`) has no numeric `{field}`",
                    path.display()
                )
            })
        };
        for field in ["nodes", "links", "labels_touched_total"] {
            num(field)?;
        }
        if num("oracle_checked")? < 1.0 {
            return Err(format!(
                "{}: `{name}` was recorded without the rebuild oracle check",
                path.display()
            ));
        }
        let point = ChurnPoint {
            events: num("events")?,
            incremental_median_secs: num("incremental_median_secs")?,
            rebuild_median_secs: num("rebuild_median_secs")?,
            name,
        };
        if point.incremental_median_secs > point.rebuild_median_secs {
            return Err(format!(
                "{}: `{}` patches slower than it rebuilds (incremental median \
                 {:.6}s > rebuild median {:.6}s) — the incremental baseline \
                 machinery has regressed",
                path.display(),
                point.name,
                point.incremental_median_secs,
                point.rebuild_median_secs
            ));
        }
        points.push(point);
    }
    if require_full && points.len() < CHURN_MIN_POINTS {
        return Err(format!(
            "{}: full run has {} workloads, need at least {CHURN_MIN_POINTS}",
            path.display(),
            points.len()
        ));
    }
    Ok(points)
}

/// Regenerates `BENCH_churn.json` at the workspace root (or, with
/// `smoke`, a small-grid artifact under `target/bench-churn/`) and
/// validates what was written.
///
/// # Errors
///
/// Reports a recorder failure or a validation error on the fresh file.
pub fn run_bench_churn(root: &Path, smoke: bool) -> Result<(), String> {
    let out = if smoke {
        let dir = root.join("target").join("bench-churn");
        fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        dir.join("BENCH_churn.smoke.json")
    } else {
        root.join("BENCH_churn.json")
    };
    let mut cmd = std::process::Command::new("cargo");
    cmd.args([
        "run",
        "--release",
        "-p",
        "rtr-bench",
        "--bin",
        "bench_churn",
        "--",
    ]);
    if smoke {
        cmd.arg("--smoke");
    }
    let status = cmd
        .arg(&out)
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_churn exited with {status}"));
    }
    let points = parse_churn_file(&out, !smoke)?;
    println!(
        "cargo xtask bench-churn: wrote {} ({} workloads{})",
        out.display(),
        points.len(),
        if smoke { ", smoke" } else { "" }
    );
    Ok(())
}

/// Scenario classes a committed `results/matrix.json` must cover, in the
/// evaluation's canonical order.
pub const MATRIX_CLASSES: [&str; 4] = [
    "single-link",
    "sparse-multi-link",
    "correlated-area",
    "multi-area",
];

/// Schemes every class row of a committed matrix must report, in
/// `SchemeId` order.
pub const MATRIX_SCHEMES: [&str; 5] = ["RTR", "FCP", "MRC", "eMRC", "FEP"];

/// Reads a `results/matrix.json` (Extension M) and validates its schema:
/// a `classes` array covering exactly [`MATRIX_CLASSES`] in order, each
/// row carrying a positive numeric `cases` and one entry per
/// [`MATRIX_SCHEMES`] member with a finite `delivery_pct` and
/// `optimal_pct` in `0..=100` (`mean_stretch` may be `null` — a scheme
/// that never delivered has no stretch). Returns `(classes, schemes)`
/// counts.
///
/// # Errors
///
/// Reports the first missing field, out-of-range value, or class/scheme
/// mismatch with the file's path.
pub fn parse_matrix_file(path: &Path) -> Result<(usize, usize), String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let classes = doc
        .get("classes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `classes` array", path.display()))?;
    if classes.len() != MATRIX_CLASSES.len() {
        return Err(format!(
            "{}: {} classes, expected the {} of {MATRIX_CLASSES:?}",
            path.display(),
            classes.len(),
            MATRIX_CLASSES.len()
        ));
    }
    for (row, expected_class) in classes.iter().zip(MATRIX_CLASSES) {
        let class = row.get("class").and_then(JsonValue::as_str).unwrap_or("");
        if class != expected_class {
            return Err(format!(
                "{}: class `{class}` where `{expected_class}` was expected",
                path.display()
            ));
        }
        let cases = row.get("cases").and_then(JsonValue::as_f64).unwrap_or(0.0);
        if cases < 1.0 {
            return Err(format!(
                "{}: class `{class}` aggregates no cases",
                path.display()
            ));
        }
        let schemes = row
            .get("schemes")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{}: class `{class}` has no `schemes`", path.display()))?;
        if schemes.len() != MATRIX_SCHEMES.len() {
            return Err(format!(
                "{}: class `{class}` reports {} schemes, expected the {} of {MATRIX_SCHEMES:?}",
                path.display(),
                schemes.len(),
                MATRIX_SCHEMES.len()
            ));
        }
        for (cell, expected_scheme) in schemes.iter().zip(MATRIX_SCHEMES) {
            let scheme = cell.get("scheme").and_then(JsonValue::as_str).unwrap_or("");
            if scheme != expected_scheme {
                return Err(format!(
                    "{}: class `{class}` lists scheme `{scheme}` where \
                     `{expected_scheme}` was expected",
                    path.display()
                ));
            }
            for field in ["delivery_pct", "optimal_pct"] {
                let v = cell.get(field).and_then(JsonValue::as_f64);
                match v {
                    Some(v) if (0.0..=100.0).contains(&v) => {}
                    _ => {
                        return Err(format!(
                            "{}: class `{class}`, scheme `{scheme}`: `{field}` \
                             {v:?} is not a percentage",
                            path.display()
                        ))
                    }
                }
            }
        }
    }
    Ok((MATRIX_CLASSES.len(), MATRIX_SCHEMES.len()))
}

/// Validates the recorded speedups: a sub-1.0 speedup is a hard failure
/// on a host with at least as many cores as the measurement used, but
/// only a warning on an undersized recorder (oversubscribed threads slow
/// each other down; the number says nothing about the algorithm). Returns
/// the warnings to print.
///
/// # Errors
///
/// Fails on the first sub-1.0 speedup recorded on an adequately-sized
/// host.
pub fn check_speedups(file: &BenchFile) -> Result<Vec<String>, String> {
    let (Some(host), Some(threads)) = (file.host_parallelism, file.parallel_threads) else {
        return Ok(Vec::new()); // pre-speedup schema: nothing to check
    };
    let undersized = host < threads;
    let mut warnings = Vec::new();
    for row in &file.rows {
        let Some(speedup) = row.speedup else { continue };
        if speedup >= 1.0 {
            continue;
        }
        if undersized {
            warnings.push(format!(
                "warning: `{}` records speedup {speedup:.3} < 1.0, but the recording \
                 host is undersized (host_parallelism {host:.0} < parallel_threads \
                 {threads:.0}) — oversubscription artifact, not gated; re-record on \
                 a host with >= {threads:.0} cores for a meaningful number",
                row.name
            ));
        } else {
            return Err(format!(
                "parallel regression on `{}`: recorded speedup {speedup:.3} < 1.0 on an \
                 adequately-sized host (host_parallelism {host:.0} >= parallel_threads \
                 {threads:.0}) — investigate before re-recording",
                row.name
            ));
        }
    }
    Ok(warnings)
}

/// Runs the `bench_eval` recorder and leaves `BENCH_eval.json` at the
/// workspace root. Records with `--features simd` so the committed
/// artifact carries the full kernel matrix (`sweep_secs_simd` included;
/// the kernel falls back to the batched path on non-AVX2 recorders).
///
/// # Errors
///
/// Fails when the recorder cannot be launched or exits non-zero.
pub fn run_bench_record(root: &Path) -> Result<(), String> {
    let out = root.join("BENCH_eval.json");
    let status = std::process::Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "rtr-bench",
            "--features",
            "simd",
            "--bin",
            "bench_eval",
        ])
        .arg("--")
        .arg(&out)
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_eval exited with {status}"));
    }
    println!("cargo xtask bench-record: wrote {}", out.display());
    Ok(())
}

/// Runs the `bench_scale` recorder. A full run leaves `BENCH_scale.json`
/// at the workspace root and enforces the full-sweep floor; `--smoke`
/// (the CI scale-smoke job) sweeps only the 1k tier into
/// `target/bench-scale/` and checks schema only.
///
/// # Errors
///
/// Fails when the recorder cannot be launched, exits non-zero, or writes
/// a file that does not validate.
pub fn run_bench_scale(root: &Path, smoke: bool) -> Result<(), String> {
    let out = if smoke {
        let dir = root.join("target").join("bench-scale");
        fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        dir.join("BENCH_scale.smoke.json")
    } else {
        root.join("BENCH_scale.json")
    };
    let mut cmd = std::process::Command::new("cargo");
    cmd.args([
        "run",
        "--release",
        "-p",
        "rtr-bench",
        "--bin",
        "bench_scale",
        "--",
    ]);
    if smoke {
        cmd.arg("--smoke");
    }
    let status = cmd
        .arg(&out)
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_scale exited with {status}"));
    }
    let points = parse_scale_file(&out, !smoke)?;
    println!(
        "cargo xtask bench-scale: wrote {} ({} points{})",
        out.display(),
        points.len(),
        if smoke { ", smoke" } else { "" }
    );
    Ok(())
}

/// One sweep point of `BENCH_serve.json`, as the checker reads it.
#[derive(Debug)]
pub struct ServePoint {
    /// `inproc` or `tcp`.
    pub transport: String,
    /// Worker-thread count of the point.
    pub workers: f64,
    /// `open` (Poisson arrivals) or `saturate` (fixed in-flight).
    pub mode: String,
    /// Sustained destination recoveries per second.
    pub recoveries_per_sec: f64,
}

/// The parts of `BENCH_serve.json` the checker validates.
#[derive(Debug)]
pub struct ServeFile {
    /// Resolved thread count on the recording host.
    pub host_parallelism: Option<f64>,
    /// Per-(transport, workers, mode) points.
    pub points: Vec<ServePoint>,
}

/// Reads a `BENCH_serve.json` and validates its schema: the
/// [`SERVE_SCHEMA`] tag, a non-empty `points` array, per point the full
/// key set the `loadgen --sweep` recorder writes, monotone non-negative
/// latency quantiles (p50 <= p99 <= p999 for both sojourn and service
/// time), and a clean drain on every point. With `require_full`,
/// additionally requires at least two distinct worker counts and both
/// transports, so the committed artifact always carries a scaling
/// comparison.
///
/// # Errors
///
/// Reports the first missing field, schema mismatch, quantile inversion,
/// dirty drain, or coverage gap with the file's path.
pub fn parse_serve_file(path: &Path, require_full: bool) -> Result<ServeFile, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json_parse(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    let schema = doc.get("schema").and_then(JsonValue::as_str);
    if schema != Some(SERVE_SCHEMA) {
        return Err(format!(
            "{}: schema {schema:?} is not {SERVE_SCHEMA:?}",
            path.display()
        ));
    }
    let raw = doc
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{}: missing `points` array", path.display()))?;
    if raw.is_empty() {
        return Err(format!("{}: `points` is empty", path.display()));
    }
    let mut points = Vec::new();
    for (i, p) in raw.iter().enumerate() {
        let text_field = |field: &str| {
            p.get(field)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{}: point {i} has no string `{field}`", path.display()))
        };
        let transport = text_field("transport")?;
        let mode = text_field("mode")?;
        let num = |field: &str| {
            p.get(field).and_then(JsonValue::as_f64).ok_or_else(|| {
                format!(
                    "{}: point {i} ({transport} x{}) has no numeric `{field}`",
                    path.display(),
                    p.get("workers").and_then(JsonValue::as_f64).unwrap_or(0.0)
                )
            })
        };
        // Fields not carried in `ServePoint` are still schema-required.
        for field in [
            "target_qps",
            "duration_secs",
            "offered",
            "completed",
            "delivered",
            "errors",
            "recoveries",
            "steals",
            "peak_rss_mb",
        ] {
            num(field)?;
        }
        for prefix in ["sojourn", "service"] {
            let p50 = num(&format!("{prefix}_p50_us"))?;
            let p99 = num(&format!("{prefix}_p99_us"))?;
            let p999 = num(&format!("{prefix}_p999_us"))?;
            if p50 < 0.0 || !(p50 <= p99 && p99 <= p999) {
                return Err(format!(
                    "{}: point {i} ({transport}) has non-monotone {prefix} quantiles \
                     p50 {p50} / p99 {p99} / p999 {p999}",
                    path.display()
                ));
            }
        }
        if num("drained_clean")? < 1.0 {
            return Err(format!(
                "{}: point {i} ({transport}) did not drain clean — the run left \
                 requests in flight",
                path.display()
            ));
        }
        points.push(ServePoint {
            workers: num("workers")?,
            recoveries_per_sec: num("recoveries_per_sec")?,
            transport,
            mode,
        });
    }
    if require_full {
        let mut worker_counts: Vec<u64> = points.iter().map(|p| p.workers as u64).collect();
        worker_counts.sort_unstable();
        worker_counts.dedup();
        if worker_counts.len() < 2 {
            return Err(format!(
                "{}: full sweep covers only worker counts {worker_counts:?}, \
                 need at least two for a scaling comparison",
                path.display()
            ));
        }
        for transport in ["inproc", "tcp"] {
            if !points.iter().any(|p| p.transport == transport) {
                return Err(format!(
                    "{}: full sweep has no `{transport}` points",
                    path.display()
                ));
            }
        }
    }
    Ok(ServeFile {
        host_parallelism: doc.get("host_parallelism").and_then(JsonValue::as_f64),
        points,
    })
}

/// Validates the recorded multi-worker scaling: the best multi-worker
/// saturated in-process throughput must be at least [`SERVE_MIN_SPEEDUP`]
/// times the one-worker figure — a hard failure on hosts with at least
/// [`SERVE_SPEEDUP_MIN_HOST`] cores, a warning on undersized recorders
/// (extra workers on a one-core host only time-slice one another).
/// Returns the warnings to print.
///
/// # Errors
///
/// Fails when an adequately-sized host recorded a sub-threshold ratio.
pub fn check_serve_speedup(file: &ServeFile) -> Result<Vec<String>, String> {
    let saturated = |p: &&ServePoint| p.mode == "saturate" && p.transport == "inproc";
    let base = file
        .points
        .iter()
        .filter(saturated)
        .filter(|p| p.workers as u64 == 1)
        .map(|p| p.recoveries_per_sec)
        .fold(f64::NAN, f64::max);
    let best = file
        .points
        .iter()
        .filter(saturated)
        .filter(|p| p.workers > 1.0)
        .map(|p| p.recoveries_per_sec)
        .fold(f64::NAN, f64::max);
    if !base.is_finite() || !best.is_finite() || base <= 0.0 {
        return Ok(vec![
            "warning: no saturated in-process one-worker/multi-worker pair to \
             compare — scaling not checked"
                .into(),
        ]);
    }
    let ratio = best / base;
    let host = file.host_parallelism.unwrap_or(0.0);
    if ratio >= SERVE_MIN_SPEEDUP {
        return Ok(Vec::new());
    }
    if host < SERVE_SPEEDUP_MIN_HOST {
        return Ok(vec![format!(
            "warning: multi-worker saturated throughput is only {ratio:.2}x the \
             one-worker figure, but the recording host has parallelism {host:.0} \
             (< {SERVE_SPEEDUP_MIN_HOST:.0}) — time-slicing artifact, not gated; \
             re-record on a host with >= {SERVE_SPEEDUP_MIN_HOST:.0} cores"
        )]);
    }
    Err(format!(
        "serve scaling regression: multi-worker saturated throughput is only \
         {ratio:.2}x the one-worker figure on a host with parallelism {host:.0} \
         (floor {SERVE_MIN_SPEEDUP}x) — investigate before re-recording with \
         `cargo xtask bench-serve`"
    ))
}

/// Runs the `loadgen --sweep` recorder. A full run leaves
/// `BENCH_serve.json` at the workspace root and enforces the coverage
/// floor; `--smoke` (the CI serve-smoke job) runs the one-second tier
/// into `target/bench-serve/` and checks schema only. Scaling is
/// validated via [`check_serve_speedup`] either way.
///
/// # Errors
///
/// Fails when the recorder cannot be launched, exits non-zero, or writes
/// a file that does not validate.
pub fn run_bench_serve(root: &Path, smoke: bool) -> Result<(), String> {
    let out = if smoke {
        let dir = root.join("target").join("bench-serve");
        fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        dir.join("BENCH_serve.smoke.json")
    } else {
        root.join("BENCH_serve.json")
    };
    let mut cmd = std::process::Command::new("cargo");
    cmd.args([
        "run",
        "--release",
        "-p",
        "rtr-serve",
        "--bin",
        "loadgen",
        "--",
        "--sweep",
    ]);
    cmd.arg(&out);
    if smoke {
        cmd.arg("--smoke");
    }
    let status = cmd
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("loadgen --sweep exited with {status}"));
    }
    let file = parse_serve_file(&out, !smoke)?;
    for warning in check_serve_speedup(&file)? {
        println!("cargo xtask bench-serve: {warning}");
    }
    println!(
        "cargo xtask bench-serve: wrote {} ({} points{})",
        out.display(),
        file.points.len(),
        if smoke { ", smoke" } else { "" }
    );
    Ok(())
}

/// Validates the committed `BENCH_eval.json` and guards against gross
/// performance regressions: records a fresh file under `target/`, then
/// fails if the fresh quick-workload serial total exceeds 2× the
/// committed total, or if any single topology's phase-1 sweep time
/// exceeds 2× its committed `sweep_secs` plus 1 ms of absolute slack
/// (the per-topology sweep is sub-millisecond on small graphs, so the
/// floor keeps timer noise from tripping the ratio). Coarse gates that
/// survive CI-machine noise while catching algorithmic regressions.
/// Recorded speedups are additionally validated via [`check_speedups`],
/// and the committed `BENCH_scale.json` / `BENCH_serve.json` /
/// `results/matrix.json` artifacts are schema-validated (the serve sweep
/// also through its scaling gate, the matrix through
/// [`parse_matrix_file`]).
///
/// # Errors
///
/// Fails on parse errors, missing topologies, regression-gate trips, and
/// sub-1.0 speedups recorded on adequately-sized hosts.
pub fn run_bench_check(root: &Path) -> Result<(), String> {
    let committed_file = parse_bench_file(&root.join("BENCH_eval.json"))?;
    for warning in check_speedups(&committed_file)? {
        println!("cargo xtask bench-check: {warning}");
    }
    let committed = &committed_file.rows;

    let fresh_dir = root.join("target").join("bench-check");
    fs::create_dir_all(&fresh_dir)
        .map_err(|e| format!("cannot create {}: {e}", fresh_dir.display()))?;
    let fresh_path = fresh_dir.join("BENCH_eval.fresh.json");
    let status = std::process::Command::new("cargo")
        .args(["run", "--release", "-p", "rtr-bench", "--bin", "bench_eval"])
        .arg("--")
        .arg(&fresh_path)
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Err(format!("bench_eval exited with {status}"));
    }
    let fresh = parse_bench_file(&fresh_path)?.rows;

    for c in committed {
        let Some(f) = fresh.iter().find(|f| f.name == c.name) else {
            return Err(format!(
                "fresh run is missing committed topology `{}`",
                c.name
            ));
        };
        if f.sweep_secs > 2.0 * c.sweep_secs + 0.001 {
            return Err(format!(
                "phase-1 sweep regression on `{}`: fresh sweep_secs {:.6}s > \
                 2x committed {:.6}s + 1ms — investigate before re-recording \
                 with `cargo xtask bench-record`",
                c.name, f.sweep_secs, c.sweep_secs
            ));
        }
    }
    let committed_total: f64 = committed.iter().map(|r| r.serial_secs).sum();
    let fresh_total: f64 = fresh.iter().map(|r| r.serial_secs).sum();
    if fresh_total > 2.0 * committed_total {
        return Err(format!(
            "quick-workload serial regression: fresh total {fresh_total:.4}s > \
             2x committed total {committed_total:.4}s — investigate before \
             re-recording with `cargo xtask bench-record`"
        ));
    }
    println!(
        "cargo xtask bench-check: OK — {} topologies, fresh serial total \
         {fresh_total:.4}s vs committed {committed_total:.4}s (gates: 2x \
         total, 2x+1ms per-topology sweep)",
        committed.len()
    );

    // The committed scale sweep is validated schema-only (no fresh run:
    // the 100k tier is minutes of work, not a CI-check budget).
    let scale_points = parse_scale_file(&root.join("BENCH_scale.json"), true)?;
    println!(
        "cargo xtask bench-check: OK — BENCH_scale.json carries {} full-sweep points",
        scale_points.len()
    );

    // Same treatment for the committed serving sweep: schema, quantile
    // monotonicity, clean drains, coverage, and the scaling gate.
    let serve_file = parse_serve_file(&root.join("BENCH_serve.json"), true)?;
    for warning in check_serve_speedup(&serve_file)? {
        println!("cargo xtask bench-check: {warning}");
    }
    println!(
        "cargo xtask bench-check: OK — BENCH_serve.json carries {} sweep points",
        serve_file.points.len()
    );

    // The committed churn sweep is validated schema-plus-invariants (no
    // fresh run — the churn-smoke CI job replays a live oracle-checked
    // timeline instead): every point oracle-verified, incremental median
    // at or below rebuild median.
    let churn_points = parse_churn_file(&root.join("BENCH_churn.json"), true)?;
    println!(
        "cargo xtask bench-check: OK — BENCH_churn.json carries {} oracle-checked \
         timeline workloads (incremental median <= rebuild median on each)",
        churn_points.len()
    );

    // The committed scenario-class matrix (Extension M) is schema-gated
    // the same way: the full run is a repro-budget job, not a CI one.
    let (mclasses, mschemes) = parse_matrix_file(&root.join("results").join("matrix.json"))?;
    println!(
        "cargo xtask bench-check: OK — results/matrix.json carries the \
         {mclasses}×{mschemes} class × scheme matrix"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_file(host: f64, threads: f64, speedups: &[f64]) -> BenchFile {
        BenchFile {
            host_parallelism: Some(host),
            parallel_threads: Some(threads),
            rows: speedups
                .iter()
                .enumerate()
                .map(|(i, &s)| BenchRow {
                    name: format!("T{i}"),
                    serial_secs: 1.0,
                    sweep_secs: 0.001,
                    speedup: Some(s),
                })
                .collect(),
        }
    }

    #[test]
    fn undersized_host_warns_instead_of_gating() {
        let f = bench_file(1.0, 8.0, &[0.74, 0.93, 1.2]);
        let warnings = check_speedups(&f).expect("undersized host must not gate");
        assert_eq!(warnings.len(), 2, "got: {warnings:?}");
        assert!(warnings.iter().all(|w| w.contains("undersized")));
    }

    #[test]
    fn adequately_sized_host_gates_on_sub_unity_speedup() {
        let f = bench_file(8.0, 8.0, &[1.5, 0.9]);
        let err = check_speedups(&f).expect_err("regression must gate");
        assert!(err.contains("T1"), "got: {err}");
        assert!(check_speedups(&bench_file(16.0, 8.0, &[1.5, 3.2])).is_ok());
    }

    #[test]
    fn pre_speedup_schema_passes() {
        let f = BenchFile {
            host_parallelism: None,
            parallel_threads: None,
            rows: Vec::new(),
        };
        assert!(check_speedups(&f).unwrap().is_empty());
    }

    fn scale_json(n_points: usize, max_nodes: f64, crosslink_secs: f64) -> String {
        let points: Vec<String> = (0..n_points)
            .map(|i| {
                let nodes = if i == 0 { max_nodes } else { 1000.0 };
                format!(
                    "{{\"generator\": \"waxman\", \"nodes\": {nodes}, \"links\": {}, \
                     \"build_secs\": 0.1, \"crosslink_secs\": {crosslink_secs}, \
                     \"sweep_secs\": 0.01, \"recover_secs\": 0.01, \"peak_rss_mb\": 100}}",
                    nodes * 2.0
                )
            })
            .collect();
        format!(
            "{{\"schema\": \"{SCALE_SCHEMA}\", \"points\": [{}]}}",
            points.join(",")
        )
    }

    fn write_scale(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xtask-bench-scale-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn parse_scale_file_accepts_a_full_sweep() {
        let p = write_scale("full.json", &scale_json(SCALE_MIN_POINTS, 100_000.0, 3.0));
        let points = parse_scale_file(&p, true).unwrap();
        assert_eq!(points.len(), SCALE_MIN_POINTS);
        assert_eq!(points[0].generator, "waxman");
        assert_eq!(points[0].nodes, 100_000.0);
    }

    #[test]
    fn parse_scale_file_enforces_the_full_sweep_floor() {
        let few = write_scale("few.json", &scale_json(3, 100_000.0, 3.0));
        assert!(parse_scale_file(&few, true).unwrap_err().contains("points"));
        // The same file passes as a smoke (schema-only) artifact.
        assert_eq!(parse_scale_file(&few, false).unwrap().len(), 3);

        let small = write_scale("small.json", &scale_json(SCALE_MIN_POINTS, 10_000.0, 3.0));
        assert!(parse_scale_file(&small, true)
            .unwrap_err()
            .contains("tops out"));

        let slow = write_scale("slow.json", &scale_json(SCALE_MIN_POINTS, 100_000.0, 500.0));
        assert!(parse_scale_file(&slow, true)
            .unwrap_err()
            .contains("spatial index"));
    }

    #[test]
    fn parse_scale_file_rejects_schema_drift() {
        let bad_tag = write_scale(
            "tag.json",
            "{\"schema\": \"bench-scale-v0\", \"points\": [{}]}",
        );
        assert!(parse_scale_file(&bad_tag, false)
            .unwrap_err()
            .contains("schema"));

        let missing_field = write_scale(
            "field.json",
            &format!(
                "{{\"schema\": \"{SCALE_SCHEMA}\", \"points\": [\
                 {{\"generator\": \"waxman\", \"nodes\": 1000}}]}}"
            ),
        );
        let err = parse_scale_file(&missing_field, false).unwrap_err();
        assert!(err.contains("build_secs"), "got: {err}");
    }

    /// A well-formed churn document with `n_points` identical workloads.
    fn churn_json(n_points: usize, inc_median: f64, reb_median: f64, oracle: f64) -> String {
        let points: Vec<String> = (0..n_points)
            .map(|i| {
                format!(
                    "{{\"name\": \"w{i}-churn\", \"nodes\": 52, \"links\": 84, \
                     \"events\": 10, \"incremental_median_secs\": {inc_median}, \
                     \"rebuild_median_secs\": {reb_median}, \
                     \"labels_touched_total\": 6610, \"oracle_checked\": {oracle}}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\": \"{CHURN_SCHEMA}\", \"points\": [{}]}}",
            points.join(",")
        )
    }

    fn write_churn(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xtask-bench-churn-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn parse_churn_file_accepts_a_full_run() {
        let p = write_churn("full.json", &churn_json(3, 0.0001, 0.0009, 1.0));
        let points = parse_churn_file(&p, true).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].name, "w0-churn");
        assert_eq!(points[0].events, 10.0);
    }

    #[test]
    fn parse_churn_file_enforces_the_gates() {
        // A single workload passes as smoke but not as the full artifact.
        let few = write_churn("few.json", &churn_json(1, 0.0001, 0.0009, 1.0));
        assert_eq!(parse_churn_file(&few, false).unwrap().len(), 1);
        assert!(parse_churn_file(&few, true)
            .unwrap_err()
            .contains("workloads"));

        // Incremental slower than rebuild = regression, at any level.
        let slow = write_churn("slow.json", &churn_json(3, 0.002, 0.001, 1.0));
        assert!(parse_churn_file(&slow, false)
            .unwrap_err()
            .contains("patches slower"));

        // A point recorded without the oracle check is rejected.
        let unverified = write_churn("unverified.json", &churn_json(3, 0.0001, 0.0009, 0.0));
        assert!(parse_churn_file(&unverified, false)
            .unwrap_err()
            .contains("oracle"));
    }

    #[test]
    fn parse_churn_file_rejects_schema_drift() {
        let bad_tag = write_churn(
            "tag.json",
            "{\"schema\": \"bench-churn-v0\", \"points\": [{}]}",
        );
        assert!(parse_churn_file(&bad_tag, false)
            .unwrap_err()
            .contains("schema"));

        let missing = write_churn(
            "field.json",
            &format!(
                "{{\"schema\": \"{CHURN_SCHEMA}\", \"points\": [\
                 {{\"name\": \"w0-churn\", \"nodes\": 52}}]}}"
            ),
        );
        let err = parse_churn_file(&missing, false).unwrap_err();
        assert!(err.contains("links"), "got: {err}");
    }

    /// A well-formed matrix document; `mutate` lets a test break it.
    fn matrix_json(mutate: impl Fn(String) -> String) -> String {
        let rows: Vec<String> = MATRIX_CLASSES
            .iter()
            .map(|class| {
                let cells: Vec<String> = MATRIX_SCHEMES
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"scheme\": \"{s}\", \"delivery_pct\": 97.5, \
                             \"optimal_pct\": 88.0, \"mean_stretch\": 1.02}}"
                        )
                    })
                    .collect();
                format!(
                    "{{\"class\": \"{class}\", \"cases\": 240, \"schemes\": [{}]}}",
                    cells.join(",")
                )
            })
            .collect();
        mutate(format!(
            "{{\"id\": \"Extension M\", \"classes\": [{}]}}",
            rows.join(",")
        ))
    }

    fn write_matrix(name: &str, text: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xtask-bench-matrix-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn parse_matrix_file_accepts_the_full_matrix() {
        let p = write_matrix("ok.json", &matrix_json(|s| s));
        assert_eq!(parse_matrix_file(&p).unwrap(), (4, 5));
        // A null stretch (scheme never delivered) is valid.
        let p = write_matrix(
            "nullstretch.json",
            &matrix_json(|s| s.replace("\"mean_stretch\": 1.02", "\"mean_stretch\": null")),
        );
        assert_eq!(parse_matrix_file(&p).unwrap(), (4, 5));
    }

    #[test]
    fn parse_matrix_file_rejects_drift() {
        let missing_class = write_matrix(
            "class.json",
            &matrix_json(|s| s.replace("multi-area", "multi-zone")),
        );
        assert!(parse_matrix_file(&missing_class)
            .unwrap_err()
            .contains("multi-area"));

        let wrong_scheme = write_matrix(
            "scheme.json",
            &matrix_json(|s| s.replace("\"eMRC\"", "\"MRC2\"")),
        );
        assert!(parse_matrix_file(&wrong_scheme)
            .unwrap_err()
            .contains("eMRC"));

        let bad_pct = write_matrix(
            "pct.json",
            &matrix_json(|s| s.replace("\"delivery_pct\": 97.5", "\"delivery_pct\": 250.0")),
        );
        assert!(parse_matrix_file(&bad_pct)
            .unwrap_err()
            .contains("delivery_pct"));

        let empty = write_matrix(
            "cases.json",
            &matrix_json(|s| s.replace("\"cases\": 240", "\"cases\": 0")),
        );
        assert!(parse_matrix_file(&empty).unwrap_err().contains("no cases"));
    }

    /// One serve point with every recorder key; `over` lets a test break
    /// one field.
    fn serve_point(transport: &str, workers: u64, mode: &str, rps: f64, over: &str) -> String {
        let mut fields = vec![
            format!("\"transport\": \"{transport}\""),
            format!("\"workers\": {workers}"),
            format!("\"mode\": \"{mode}\""),
            "\"target_qps\": 500".into(),
            "\"duration_secs\": 1".into(),
            "\"offered\": 500".into(),
            "\"completed\": 500".into(),
            format!("\"recoveries\": {}", rps),
            "\"delivered\": 400".into(),
            "\"errors\": 0".into(),
            format!("\"recoveries_per_sec\": {rps}"),
            "\"sojourn_p50_us\": 100".into(),
            "\"sojourn_p99_us\": 900".into(),
            "\"sojourn_p999_us\": 2000".into(),
            "\"service_p50_us\": 50".into(),
            "\"service_p99_us\": 300".into(),
            "\"service_p999_us\": 700".into(),
            "\"steals\": 3".into(),
            "\"peak_rss_mb\": 60".into(),
            "\"drained_clean\": 1".into(),
        ];
        if !over.is_empty() {
            let key = over
                .split(':')
                .next()
                .unwrap_or("")
                .trim()
                .trim_matches('"');
            fields.retain(|f| !f.starts_with(&format!("\"{key}\"")));
            fields.push(over.to_string());
        }
        format!("{{{}}}", fields.join(", "))
    }

    fn serve_json(host: f64, points: &[String]) -> String {
        format!(
            "{{\"schema\": \"{SERVE_SCHEMA}\", \"host_parallelism\": {host}, \
             \"topo\": \"AS4323\", \"smoke\": 0, \"points\": [{}]}}",
            points.join(",")
        )
    }

    fn full_serve_points(one_worker_rps: f64, two_worker_rps: f64) -> Vec<String> {
        vec![
            serve_point("inproc", 1, "open", one_worker_rps, ""),
            serve_point("inproc", 1, "saturate", one_worker_rps, ""),
            serve_point("tcp", 1, "saturate", one_worker_rps, ""),
            serve_point("inproc", 2, "saturate", two_worker_rps, ""),
            serve_point("tcp", 2, "saturate", two_worker_rps, ""),
        ]
    }

    #[test]
    fn parse_serve_file_accepts_a_full_sweep() {
        let p = write_scale(
            "serve-full.json",
            &serve_json(4.0, &full_serve_points(1000.0, 2000.0)),
        );
        let f = parse_serve_file(&p, true).unwrap();
        assert_eq!(f.points.len(), 5);
        assert_eq!(f.host_parallelism, Some(4.0));
        assert!(check_serve_speedup(&f).unwrap().is_empty());
    }

    #[test]
    fn parse_serve_file_enforces_the_coverage_floor() {
        let one_worker = write_scale(
            "serve-onew.json",
            &serve_json(
                4.0,
                &[
                    serve_point("inproc", 1, "saturate", 1000.0, ""),
                    serve_point("tcp", 1, "saturate", 900.0, ""),
                ],
            ),
        );
        let err = parse_serve_file(&one_worker, true).unwrap_err();
        assert!(err.contains("worker counts"), "got: {err}");
        // The same file passes as a smoke (schema-only) artifact.
        assert_eq!(
            parse_serve_file(&one_worker, false).unwrap().points.len(),
            2
        );

        let no_tcp = write_scale(
            "serve-notcp.json",
            &serve_json(
                4.0,
                &[
                    serve_point("inproc", 1, "saturate", 1000.0, ""),
                    serve_point("inproc", 2, "saturate", 2000.0, ""),
                ],
            ),
        );
        let err = parse_serve_file(&no_tcp, true).unwrap_err();
        assert!(err.contains("`tcp`"), "got: {err}");
    }

    #[test]
    fn parse_serve_file_rejects_bad_points() {
        let inverted = write_scale(
            "serve-inv.json",
            &serve_json(
                4.0,
                &[serve_point(
                    "inproc",
                    1,
                    "open",
                    1000.0,
                    "\"sojourn_p99_us\": 50",
                )],
            ),
        );
        let err = parse_serve_file(&inverted, false).unwrap_err();
        assert!(err.contains("non-monotone"), "got: {err}");

        let dirty = write_scale(
            "serve-dirty.json",
            &serve_json(
                4.0,
                &[serve_point(
                    "inproc",
                    1,
                    "open",
                    1000.0,
                    "\"drained_clean\": 0",
                )],
            ),
        );
        let err = parse_serve_file(&dirty, false).unwrap_err();
        assert!(err.contains("drain clean"), "got: {err}");

        let missing = write_scale(
            "serve-miss.json",
            &serve_json(
                4.0,
                &[serve_point(
                    "inproc",
                    1,
                    "open",
                    1000.0,
                    "\"steals\": \"n/a\"",
                )],
            ),
        );
        let err = parse_serve_file(&missing, false).unwrap_err();
        assert!(err.contains("steals"), "got: {err}");

        let bad_tag = write_scale(
            "serve-tag.json",
            "{\"schema\": \"bench-serve-v0\", \"points\": [{}]}",
        );
        assert!(parse_serve_file(&bad_tag, false)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn serve_speedup_gates_on_adequate_hosts_and_warns_on_undersized() {
        let flat = |host: f64| {
            parse_serve_file(
                &write_scale(
                    &format!("serve-flat-{host}.json"),
                    &serve_json(host, &full_serve_points(1000.0, 1100.0)),
                ),
                true,
            )
            .unwrap()
        };
        let err = check_serve_speedup(&flat(8.0)).expect_err("adequate host must gate");
        assert!(err.contains("scaling regression"), "got: {err}");
        let warnings = check_serve_speedup(&flat(1.0)).expect("undersized host must not gate");
        assert_eq!(warnings.len(), 1, "got: {warnings:?}");
        assert!(warnings[0].contains("time-slicing"), "got: {warnings:?}");
    }

    #[test]
    fn parse_bench_file_reads_the_recorder_schema() {
        let dir = std::env::temp_dir().join("xtask-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_eval.json");
        fs::write(
            &p,
            "{\"host_parallelism\": 4, \"parallel_threads\": 4, \"topologies\": [\
             {\"name\": \"A\", \"serial_secs\": 0.5, \"sweep_secs\": 0.001, \"speedup\": 2.0}]}",
        )
        .unwrap();
        let f = parse_bench_file(&p).unwrap();
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0].speedup, Some(2.0));
        assert_eq!(f.host_parallelism, Some(4.0));
        fs::write(&p, "{\"topologies\": [{\"name\": \"A\"}]}").unwrap();
        assert!(
            parse_bench_file(&p).is_err(),
            "missing serial_secs accepted"
        );
    }
}
