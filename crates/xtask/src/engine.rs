//! The source model the rule families run on: a file's token stream plus
//! derived facts (line table, `#[cfg(test)]` membership, function body
//! spans).
//!
//! Rules never look at raw bytes. They iterate *code positions* — indices
//! into the non-comment token stream — and ask adjacency questions
//! ("is this `.` followed by `unwrap` followed by `(`?"), which is immune
//! to the two failure classes of the PR 1 byte scans: patterns split
//! across rustfmt line breaks (false negatives) and identifiers that
//! merely contain a banned name (false positives).

use crate::lexer::{lex, Tok, TokKind};
use std::fs;
use std::path::{Path, PathBuf};

/// A single rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Rule name, matching [`crate::allow::AllowEntry::rule`].
    pub rule: &'static str,
    /// The offending source line, trimmed (or a file-level message).
    pub excerpt: String,
}

/// A loaded source file: original text, full token stream, and per-token
/// `#[cfg(test)]` membership.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Original text.
    pub text: String,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens, in order. Rules
    /// iterate these *code positions*.
    pub code: Vec<usize>,
    /// Byte offset of the start of each line (line 1 first).
    line_starts: Vec<usize>,
    /// Per-`toks` index: is the token inside a `#[cfg(test)]` item?
    in_test: Vec<bool>,
}

/// Keywords that may legally precede a `[` without it being an indexing
/// expression (`in [..]`, `return [..]`, slice patterns after `let`, ...).
pub const NON_INDEX_KEYWORDS: [&str; 18] = [
    "as", "box", "break", "dyn", "else", "for", "if", "impl", "in", "let", "loop", "match", "move",
    "mut", "ref", "return", "unsafe", "while",
];

impl SourceFile {
    /// Tokenizes `text` and derives the line table and test regions.
    ///
    /// # Errors
    ///
    /// Propagates the [`lex`] error (unterminated literal/comment) with
    /// the file name attached.
    pub fn parse(rel: &str, text: &str) -> Result<Self, String> {
        let toks = lex(text).map_err(|e| format!("{rel}: {e}"))?;
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            rel: rel.to_owned(),
            text: text.to_owned(),
            toks,
            code,
            line_starts,
            in_test: Vec::new(),
        };
        file.in_test = file.mark_test_regions();
        Ok(file)
    }

    /// Number of code positions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns true when the file holds no code tokens.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The token at code position `p`, if in range.
    pub fn ctok(&self, p: usize) -> Option<&Tok> {
        self.code.get(p).and_then(|&i| self.toks.get(i))
    }

    /// The text of the token at code position `p` (`""` out of range).
    pub fn ct(&self, p: usize) -> &str {
        self.ctok(p).map_or("", |t| t.text(&self.text))
    }

    /// The kind of the token at code position `p`.
    pub fn ck(&self, p: usize) -> Option<TokKind> {
        self.ctok(p).map(|t| t.kind)
    }

    /// Is the token at code position `p` inside a `#[cfg(test)]` item?
    pub fn cin_test(&self, p: usize) -> bool {
        self.code
            .get(p)
            .and_then(|&i| self.in_test.get(i))
            .copied()
            .unwrap_or(false)
    }

    /// 1-based line number of byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// Original source line at 1-based `line`, trimmed.
    pub fn excerpt(&self, line: usize) -> String {
        self.text
            .lines()
            .nth(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_owned())
    }

    /// The full (trimmed) text of 1-based `line` — alias kept for rule
    /// readability where the excerpt *is* the evidence.
    pub fn line_text(&self, line: usize) -> &str {
        let lo = self.line_starts.get(line.saturating_sub(1));
        let hi = self.line_starts.get(line);
        match (lo, hi) {
            (Some(&lo), Some(&hi)) => self.text.get(lo..hi).unwrap_or("").trim_end(),
            (Some(&lo), None) => self.text.get(lo..).unwrap_or("").trim_end(),
            _ => "",
        }
    }

    /// Builds a [`Violation`] of `rule` anchored at code position `p`.
    pub fn violation(&self, rule: &'static str, p: usize) -> Violation {
        let line = self.ctok(p).map_or(0, |t| self.line_of(t.lo));
        Violation {
            file: self.rel.clone(),
            line,
            rule,
            excerpt: self.excerpt(line),
        }
    }

    /// Code-position spans (inclusive braces) of every `fn <name>` body in
    /// non-test code. Bodiless trait declarations (`fn name(..);`) are
    /// skipped; multiple same-named functions all report.
    pub fn fn_body_spans(&self, name: &str) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut p = 0;
        while p + 1 < self.len() {
            if self.ct(p) == "fn" && self.ct(p + 1) == name && !self.cin_test(p) {
                let mut q = p + 2;
                // Scan to the body's `{`, or give up at `;` (trait decl).
                while q < self.len() && self.ct(q) != "{" && self.ct(q) != ";" {
                    q += 1;
                }
                if self.ct(q) == "{" {
                    if let Some(end) = self.match_brace(q) {
                        spans.push((q, end));
                        p = end;
                    }
                }
            }
            p += 1;
        }
        spans
    }

    /// Code position of the `}` matching the `{` at code position `open`.
    fn match_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for q in open..self.len() {
            match self.ct(q) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(q);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Per-`toks`-index membership in a `#[cfg(test)]`-gated item: the
    /// attribute itself through the matching closing brace (or through `;`
    /// for brace-less items), plus any further attributes in between.
    fn mark_test_regions(&self) -> Vec<bool> {
        let mut in_test = vec![false; self.toks.len()];
        let mut p = 0;
        while p + 6 < self.len() {
            let is_cfg_test = self.ct(p) == "#"
                && self.ct(p + 1) == "["
                && self.ct(p + 2) == "cfg"
                && self.ct(p + 3) == "("
                && self.ct(p + 4) == "test"
                && self.ct(p + 5) == ")"
                && self.ct(p + 6) == "]";
            if !is_cfg_test {
                p += 1;
                continue;
            }
            let mut q = p + 7;
            // Skip further attributes on the same item.
            while self.ct(q) == "#" && self.ct(q + 1) == "[" {
                let mut depth = 0usize;
                while q < self.len() {
                    match self.ct(q) {
                        "[" => depth += 1,
                        "]" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    q += 1;
                }
                q += 1;
            }
            // Scan to the item's `{` (brace-matched) or `;`.
            while q < self.len() && self.ct(q) != "{" && self.ct(q) != ";" {
                q += 1;
            }
            let end = if self.ct(q) == "{" {
                self.match_brace(q).unwrap_or(self.len().saturating_sub(1))
            } else {
                q.min(self.len().saturating_sub(1))
            };
            for cp in p..=end {
                if let Some(&ti) = self.code.get(cp) {
                    if let Some(slot) = in_test.get_mut(ti) {
                        *slot = true;
                    }
                }
            }
            p = end + 1;
        }
        in_test
    }
}

/// The workspace root, two levels above this crate's manifest.
pub fn workspace_root() -> Result<PathBuf, String> {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".into())
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut local = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            local.push(path);
        }
    }
    local.sort();
    out.extend(local);
    Ok(())
}

/// Reads and parses one source file, recording its workspace-relative path.
pub fn load_source(root: &Path, path: &Path) -> Result<SourceFile, String> {
    let raw =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    SourceFile::parse(&rel, &raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src).unwrap()
    }

    #[test]
    fn code_positions_skip_comments() {
        let f = file("a // comment\nb /* block */ c");
        let texts: Vec<&str> = (0..f.len()).map(|p| f.ct(p)).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn line_numbers_and_excerpts() {
        let f = file("let a = 1;\nlet b = 2;\n");
        let p_b = (0..f.len()).find(|&p| f.ct(p) == "b").unwrap();
        let v = f.violation("demo", p_b);
        assert_eq!(v.line, 2);
        assert_eq!(v.excerpt, "let b = 2;");
        assert_eq!(f.line_text(2), "let b = 2;");
    }

    #[test]
    fn test_regions_are_marked() {
        let f = file(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n",
        );
        let find = |t: &str| (0..f.len()).find(|&p| f.ct(p) == t).unwrap();
        assert!(!f.cin_test(find("live")));
        assert!(f.cin_test(find("unwrap")));
        assert!(!f.cin_test(find("after")));
    }

    #[test]
    fn test_regions_cover_attributed_and_braceless_items() {
        let f = file("#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() {} }\n#[cfg(test)]\nuse foo::bar;\nfn live() {}\n");
        let find = |t: &str| (0..f.len()).find(|&p| f.ct(p) == t).unwrap();
        assert!(f.cin_test(find("x")));
        assert!(f.cin_test(find("bar")));
        assert!(!f.cin_test(find("live")));
    }

    #[test]
    fn fn_body_spans_skip_trait_decls_and_find_all_impls() {
        let src = "trait Q { fn push(&mut self, x: u32); }\n\
                   impl Q for A { fn push(&mut self, x: u32) { self.a(x) } }\n\
                   impl Q for B { fn push(&mut self, x: u32) { self.b(x) } }\n";
        let f = file(src);
        let spans = f.fn_body_spans("push");
        assert_eq!(spans.len(), 2);
        for (lo, hi) in spans {
            assert_eq!(f.ct(lo), "{");
            assert_eq!(f.ct(hi), "}");
        }
    }

    #[test]
    fn fn_body_spans_ignore_test_fns() {
        let f = file("#[cfg(test)]\nmod t { fn push() { Vec::<u8>::new(); } }\n");
        assert!(f.fn_body_spans("push").is_empty());
    }
}
