//! Paper invariants: the `failed_links` / `cross_links` header fields may
//! be mutated only inside their typed setters in `crates/sim/src/header.rs`
//! (and must stay private there), and floating-point link weights must
//! never be compared with `==` / `!=`.

use crate::engine::{SourceFile, Violation};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Methods that mutate a `LinkIdSet` header field.
const MUTATORS: [&str; 9] = [
    "insert", "extend", "clear", "remove", "push", "pop", "retain", "truncate", "drain",
];

/// The header fields whose mutation is confined to their setters.
const HEADER_FIELDS: [&str; 2] = ["failed_links", "cross_links"];

/// Assignment operators (plain and compound) that write through a place
/// expression. The PR 1 byte scanner only saw `=`; the token engine also
/// catches compound assignment.
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// Header-mutation discipline: `failed_links` / `cross_links` may be
/// mutated (or assigned) only inside the typed setters of
/// `crates/sim/src/header.rs`, and the fields must stay private.
pub fn check_header_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    let is_header = file.rel == "crates/sim/src/header.rs";
    let setter_spans: Vec<(usize, usize)> = if is_header {
        ["record_failed_link", "record_cross_link"]
            .iter()
            .flat_map(|f| file.fn_body_spans(f))
            .collect()
    } else {
        Vec::new()
    };

    for p in 0..file.len() {
        if file.cin_test(p) || file.ck(p) != Some(TokKind::Ident) {
            continue;
        }
        let word = file.ct(p);
        if !HEADER_FIELDS.contains(&word) {
            continue;
        }
        if is_header && p > 0 && file.ct(p - 1) == "pub" {
            out.push(file.violation("header-privacy", p - 1));
        }
        let mutation = if file.ct(p + 1) == "." {
            MUTATORS.contains(&file.ct(p + 2))
        } else {
            ASSIGN_OPS.contains(&file.ct(p + 1))
        };
        if !mutation {
            continue;
        }
        let in_setter = setter_spans.iter().any(|&(a, b)| p >= a && p <= b);
        if !in_setter {
            out.push(file.violation("header-mutation", p));
        }
    }
}

/// Exact floating-point equality: flags `==` / `!=` where either operand is
/// a float literal or an identifier annotated `: f64` in the same file.
pub fn check_float_eq(file: &SourceFile, out: &mut Vec<Violation>) {
    // Identifiers declared `: f64` (params, fields, lets) in this file.
    // `::` is a single distinct token, so path segments like `std::f64`
    // never look like type ascriptions.
    let mut f64_idents: BTreeSet<&str> = BTreeSet::new();
    for p in 2..file.len() {
        if file.ct(p) == "f64" && file.ct(p - 1) == ":" && file.ck(p - 2) == Some(TokKind::Ident) {
            f64_idents.insert(file.ct(p - 2));
        }
    }

    let is_float_literal = |p: usize| file.ck(p) == Some(TokKind::Num) && file.ct(p).contains('.');
    // The last identifier of the dotted chain ending at code position `p`
    // (`self.weight` -> `weight`), or `None` for non-identifiers.
    let chain_tail_ident =
        |p: usize| -> Option<&str> { (file.ck(p) == Some(TokKind::Ident)).then(|| file.ct(p)) };
    // The last identifier of the dotted chain starting at `p`, walking
    // forward over `.`-joined segments (`n.fract` -> `fract`).
    let chain_head_ident = |mut p: usize| -> Option<&str> {
        if file.ck(p) != Some(TokKind::Ident) {
            return None;
        }
        while file.ct(p + 1) == "." && file.ck(p + 2) == Some(TokKind::Ident) {
            p += 2;
        }
        Some(file.ct(p))
    };

    for p in 1..file.len() {
        if file.cin_test(p) || !matches!(file.ct(p), "==" | "!=") {
            continue;
        }
        let left_float = is_float_literal(p - 1);
        let right_float = is_float_literal(p + 1);
        let left_ident = chain_tail_ident(p - 1).is_some_and(|n| f64_idents.contains(n));
        let right_ident = chain_head_ident(p + 1).is_some_and(|n| f64_idents.contains(n));
        if left_float || right_float || left_ident || right_ident {
            out.push(file.violation("float-eq", p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src).unwrap()
    }

    #[test]
    fn header_mutation_outside_setter_is_flagged() {
        let src = "fn f(h: &mut H) { h.failed_links.insert(l); h.cross_links().len(); }";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.rule), Some("header-mutation"));
    }

    #[test]
    fn header_setters_themselves_are_allowed() {
        let src = "impl H {\n  pub fn record_failed_link(&mut self, l: L) -> bool {\n    \
                   self.failed_links.insert(l)\n  }\n  \
                   pub fn record_cross_link(&mut self, l: L) -> bool {\n    \
                   self.cross_links.insert(l)\n  }\n}\n";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/sim/src/header.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn public_header_fields_are_flagged() {
        let src = "pub struct H {\n  pub failed_links: S,\n  cross_links: S,\n}\n";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/sim/src/header.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.rule), Some("header-privacy"));
    }

    #[test]
    fn compound_assignment_counts_as_mutation() {
        let src = "fn f(h: &mut H) { h.failed_links = other; h.cross_links &= mask; }";
        let mut out = Vec::new();
        check_header_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 2, "got: {out:?}");
    }

    #[test]
    fn float_eq_flags_literals_and_f64_idents() {
        let src = "fn f(w: f64, n: u32) {\n  let _ = w == 0.5;\n  let _ = n == 3;\n}\n";
        let mut out = Vec::new();
        check_float_eq(&file("x.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.line), Some(2));
    }

    #[test]
    fn float_eq_ignores_integer_and_enum_comparisons() {
        let src = "fn f(a: usize, b: usize) -> bool { a == b && a != b + 1 }";
        let mut out = Vec::new();
        check_float_eq(&file("x.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn float_eq_sees_dotted_chains_and_ranges() {
        // `0..2` lexes as `0` `..` `2` — no float literal, no flag; the
        // dotted chain `q.len2` resolves to its `: f64`-annotated tail.
        let src = "struct Q { len2: f64 }\nfn f(q: &Q, n: u32) -> bool {\n  \
                   for _ in 0..2 {}\n  q.len2 == 0.0\n}\n";
        let mut out = Vec::new();
        check_float_eq(&file("x.rs", src), &mut out);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert_eq!(out.first().map(|v| v.line), Some(4));
    }
}
