//! Allocation discipline: a configured list of steady-state functions —
//! the phase-1 sweep, the phase-2 walk, the recovery entry points, and the
//! kernel inner loops — must not lexically contain allocating
//! constructors. The static list is cross-checked by the dynamic
//! counting-`GlobalAlloc` test in `crates/core/tests/alloc_discipline.rs`,
//! which proves zero allocations per recovery after warm-up.
//!
//! The check is shallow (one function body, no call-graph transitivity):
//! it catches the overwhelmingly common regression — someone reaching for
//! `Vec::new` / `collect` / `format!` inside a hot loop — while the
//! dynamic test catches everything transitive.

use crate::engine::{SourceFile, Violation};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// The steady-state functions held to zero lexical allocations, as
/// `(workspace-relative file, fn name)`. Every same-named non-test `fn`
/// in the file is checked (trait impls share names deliberately: both
/// `MonoQueue` impls run inside the Dijkstra inner loop).
pub const STEADY_STATE_FNS: [(&str, &str); 16] = [
    // Phase-1 sweep: next-hop selection and crossing-mask exclusion.
    ("crates/core/src/sweep.rs", "select_next_hop"),
    ("crates/core/src/sweep.rs", "is_excluded"),
    // Hybrid dense/sparse crossing probe behind `is_excluded`, and the
    // grid-index candidate query behind region harvests.
    ("crates/topology/src/crosslinks.rs", "crosses_any_with"),
    ("crates/topology/src/grid.rs", "for_candidates"),
    ("crates/core/src/phase1.rs", "collect_failure_info_traced"),
    ("crates/core/src/phase1.rs", "record_selection_crossing"),
    // Phase-2 walk: cached path lookup and the reusing source-route walk.
    ("crates/core/src/phase2.rs", "recovery_path_ref"),
    ("crates/core/src/phase2.rs", "source_route_walk_reusing"),
    // Session entry points.
    ("crates/core/src/recovery.rs", "recover_traced"),
    ("crates/core/src/recovery.rs", "recover_reusing"),
    // Dijkstra queue inner ops (both `MonoQueue` impls).
    ("crates/routing/src/kernels.rs", "push"),
    ("crates/routing/src/kernels.rs", "pop"),
    // Bitset membership and crossing-mask kernels.
    ("crates/topology/src/bitset.rs", "contains"),
    ("crates/topology/src/bitset.rs", "intersects_words_with"),
    ("crates/topology/src/kernels.rs", "intersect_any_scalar"),
    ("crates/topology/src/kernels.rs", "intersect_any_batched"),
];

/// Types whose `new` / `with_capacity` / `from` constructors allocate.
const ALLOC_TYPES: [&str; 10] = [
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];

/// Allocating constructor associated functions on [`ALLOC_TYPES`].
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// Method calls that allocate a fresh container/string.
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Runs the allocation-discipline rule over `file`, marking every
/// configured `(file, fn)` pair it finds in `seen` (by index into
/// [`STEADY_STATE_FNS`]) so the driver can flag stale configuration.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>, seen: &mut BTreeSet<usize>) {
    for (idx, (rel, fn_name)) in STEADY_STATE_FNS.iter().enumerate() {
        if file.rel != *rel {
            continue;
        }
        let spans = file.fn_body_spans(fn_name);
        if !spans.is_empty() {
            seen.insert(idx);
        }
        for (lo, hi) in spans {
            check_span(file, lo, hi, out);
        }
    }
}

/// Code position just past a `::<..>` turbofish starting at `q`, or `q`
/// unchanged when there is none.
fn skip_turbofish(file: &SourceFile, mut q: usize, hi: usize) -> usize {
    if file.ct(q) != "::" || file.ct(q + 1) != "<" {
        return q;
    }
    let mut depth = 0usize;
    q += 1;
    while q <= hi {
        // Two closing angles lex as one `>>` shift token inside nested
        // generics (`Vec<Vec<_>>`), so both arrows count here.
        match file.ct(q) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            ">>" => {
                depth = depth.saturating_sub(2);
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        q += 1;
    }
    q + 1
}

/// Flags denied constructs inside one body span (code positions).
fn check_span(file: &SourceFile, lo: usize, hi: usize, out: &mut Vec<Violation>) {
    for p in lo..=hi {
        if file.ck(p) != Some(TokKind::Ident) {
            // Allocating method calls hang off a `.` token, possibly with
            // a `.collect::<Vec<_>>()` turbofish before the parens.
            if file.ct(p) == "." && ALLOC_METHODS.contains(&file.ct(p + 1)) {
                let q = skip_turbofish(file, p + 2, hi);
                if file.ct(q) == "(" {
                    out.push(file.violation("alloc-discipline", p + 1));
                }
            }
            continue;
        }
        // `vec![..]` / `format!(..)`.
        if ALLOC_MACROS.contains(&file.ct(p)) && file.ct(p + 1) == "!" {
            out.push(file.violation("alloc-discipline", p));
            continue;
        }
        // `Vec::new(..)`, `Box::from(..)`, `String::with_capacity(..)`, ...
        // tolerating `Vec::<u32>::new()` turbofish between the two.
        if ALLOC_TYPES.contains(&file.ct(p)) {
            let q = skip_turbofish(file, p + 1, hi);
            if file.ct(q) == "::" && ALLOC_CTORS.contains(&file.ct(q + 1)) {
                out.push(file.violation("alloc-discipline", p));
            }
        }
    }
}

/// Emits a violation for every configured steady-state fn that was never
/// found, so the static list cannot silently rot as code moves.
pub fn check_config_complete(seen: &BTreeSet<usize>, out: &mut Vec<Violation>) {
    for (idx, (rel, fn_name)) in STEADY_STATE_FNS.iter().enumerate() {
        if !seen.contains(&idx) {
            out.push(Violation {
                file: (*rel).to_owned(),
                line: 0,
                rule: "alloc-discipline",
                excerpt: format!(
                    "steady-state fn `{fn_name}` not found in {rel} — update \
                     STEADY_STATE_FNS in crates/xtask/src/rules/alloc.rs"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(rel: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::parse(rel, src).unwrap();
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        check(&file, &mut out, &mut seen);
        out
    }

    #[test]
    fn allocating_constructors_in_steady_fns_are_flagged() {
        let src = "fn select_next_hop() {\n  let v = Vec::new();\n  let b = Box::new(1);\n  \
                   let s = format!(\"x\");\n  let w = vec![1, 2];\n  \
                   let t = Vec::<u32>::with_capacity(4);\n}\n";
        let out = check_src("crates/core/src/sweep.rs", src);
        assert_eq!(out.len(), 5, "got: {out:?}");
        assert!(out.iter().all(|v| v.rule == "alloc-discipline"));
    }

    #[test]
    fn allocating_methods_are_flagged() {
        let src = "fn is_excluded(xs: &[u32]) -> Vec<u32> {\n  \
                   let _ = xs.to_vec();\n  xs.iter().copied().collect()\n}\n";
        let out = check_src("crates/core/src/sweep.rs", src);
        assert_eq!(out.len(), 2, "got: {out:?}");
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let src = "fn is_excluded(xs: &[u32]) -> usize {\n  \
                   xs.iter().copied().collect::<Vec<_>>().len()\n}\n";
        let out = check_src("crates/core/src/sweep.rs", src);
        assert_eq!(out.len(), 1, "got: {out:?}");
    }

    #[test]
    fn non_allocating_bodies_and_other_fns_pass() {
        // `bucket.push(x)` is a method call, not `Vec::new`; fns outside
        // the configured list may allocate freely.
        let src = "fn select_next_hop(b: &mut Vec<u32>, x: u32) {\n  b.push(x);\n  \
                   b.truncate(2);\n}\nfn helper() -> Vec<u32> { Vec::new() }\n";
        let out = check_src("crates/core/src/sweep.rs", src);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn files_outside_the_list_are_ignored() {
        let src = "fn select_next_hop() { let v = Vec::new(); }";
        let out = check_src("crates/eval/src/x.rs", src);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn stale_config_entries_are_reported() {
        let file =
            SourceFile::parse("crates/core/src/sweep.rs", "fn select_next_hop() {}").unwrap();
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        check(&file, &mut out, &mut seen);
        assert!(seen.contains(&0), "select_next_hop not marked seen");
        // Only the two sweep.rs entries could be seen from this one file;
        // completeness over the whole workspace flags the rest.
        let mut stale = Vec::new();
        check_config_complete(&seen, &mut stale);
        assert_eq!(stale.len(), STEADY_STATE_FNS.len() - 1);
        assert!(stale.iter().all(|v| v.rule == "alloc-discipline"));
        assert!(stale.iter().any(|v| v.excerpt.contains("is_excluded")));
    }
}
