//! Print discipline: non-test code of the hot-path crates must not write
//! to stdout/stderr directly — event emission is confined to
//! `rtr_obs::TraceSink` calls, so instrumented runs and the `--trace`
//! replay observe everything the hot path reports (DESIGN.md §10).

use crate::engine::{SourceFile, Violation};
use crate::lexer::TokKind;

/// Macros that would write to stdout/stderr behind the observability
/// layer's back.
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Runs the print-discipline rule over `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        if file.ck(p) == Some(TokKind::Ident)
            && PRINT_MACROS.contains(&file.ct(p))
            && file.ct(p + 1) == "!"
        {
            out.push(file.violation("print-discipline", p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs", src).unwrap()
    }

    #[test]
    fn print_discipline_flags_every_print_macro_once() {
        let src = "fn f(x: u32) {\n  println!(\"{x}\");\n  eprintln!(\"{x}\");\n  \
                   print!(\"{x}\");\n  eprint!(\"{x}\");\n  let _ = dbg!(x);\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 5, "got: {out:?}");
        assert!(out.iter().all(|v| v.rule == "print-discipline"));
        let lines: Vec<usize> = {
            let mut l: Vec<usize> = out.iter().map(|v| v.line).collect();
            l.sort_unstable();
            l
        };
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn print_discipline_ignores_comments_strings_and_tests() {
        let src = "//! `println!` is banned here.\n\
                   fn f() { let _ = \"println!(not code)\"; }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { println!(\"ok in tests\"); }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn print_discipline_ignores_method_calls_and_longer_idents() {
        // `w.print()` is a method, `pretty_print!` is a different macro —
        // the byte scanner needed a preceding-ident check for the latter,
        // the token engine gets both for free.
        let src = "fn f(w: &W) { w.print(); pretty_print!(w); }";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }
}
