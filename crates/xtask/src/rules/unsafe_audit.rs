//! Unsafe audit: every `unsafe` block / fn / impl in the workspace must
//! carry an adjacent `SAFETY:` justification — a comment (line, block, or
//! doc `# Safety` section) on the same line or on the comment/attribute
//! lines directly above — naming the invariant the `unsafe` relies on.

use crate::engine::{SourceFile, Violation};
use crate::lexer::TokKind;

/// Runs the unsafe-audit rule over `file`. Test code is *not* exempt: an
/// unjustified `unsafe` in a test is still an unaudited proof obligation.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    for p in 0..file.len() {
        if file.ck(p) != Some(TokKind::Ident) || file.ct(p) != "unsafe" {
            continue;
        }
        let Some(tok) = file.ctok(p) else { continue };
        let line = file.line_of(tok.lo);
        if !has_adjacent_safety_comment(file, line) {
            out.push(file.violation("unsafe-audit", p));
        }
    }
}

/// True when `line` (1-based) or the run of comment / attribute lines
/// directly above it mentions `SAFETY` / `Safety`.
fn has_adjacent_safety_comment(file: &SourceFile, line: usize) -> bool {
    if mentions_safety(file.line_text(line)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = file.line_text(l).trim();
        let is_adjacent = text.starts_with("//")
            || text.starts_with("/*")
            || text.starts_with('*')
            || text.starts_with("*/")
            || text.starts_with("#[")
            || text.starts_with("#![");
        if !is_adjacent {
            return false;
        }
        if mentions_safety(text) {
            return true;
        }
    }
    false
}

fn mentions_safety(line: &str) -> bool {
    line.contains("SAFETY") || line.contains("Safety")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/topology/src/x.rs", src).unwrap()
    }

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n  unsafe { *p }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.rule), Some("unsafe-audit"));
        assert_eq!(out.first().map(|v| v.line), Some(2));
    }

    #[test]
    fn safety_comment_above_justifies_the_block() {
        let src = "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees `p` is valid.\n  \
                   unsafe { *p }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn safety_doc_section_above_attributes_justifies_the_fn() {
        let src = "/// # Safety\n/// Caller must have checked AVX2.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn g() {}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn same_line_safety_comment_counts() {
        let src = "fn f(p: *const u8) -> u8 {\n  unsafe { *p } // SAFETY: p is valid.\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn unrelated_comment_does_not_justify() {
        let src = "fn f(p: *const u8) -> u8 {\n  // fast path\n  unsafe { *p }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tests_are_not_exempt_and_strings_are() {
        let src = "fn f() { let _ = \"unsafe\"; } // unsafe in a string is fine\n\
                   #[cfg(test)]\nmod tests {\n  fn t(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert_eq!(out.first().map(|v| v.line), Some(4));
    }
}
