//! Theorem coverage: every `Theorem N` stated in DESIGN.md must map to at
//! least one `#[test]` in `crates/core/tests/theorems.rs` whose name
//! contains `theoremN`.

use crate::engine::Violation;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Runs the theorem-coverage audit against the workspace at `root`.
///
/// # Errors
///
/// Fails when DESIGN.md or the theorem test file cannot be read, or when
/// DESIGN.md names no theorems at all (the audit would be vacuous).
pub fn check(root: &Path, out: &mut Vec<Violation>) -> Result<(), String> {
    let design_path = root.join("DESIGN.md");
    let design =
        fs::read_to_string(&design_path).map_err(|e| format!("cannot read DESIGN.md: {e}"))?;
    let mut theorems: BTreeSet<u32> = BTreeSet::new();
    for (idx, _) in design.match_indices("Theorem ") {
        let digits: String = design
            .get(idx + 8..)
            .unwrap_or("")
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(n) = digits.parse() {
            theorems.insert(n);
        }
    }
    if theorems.is_empty() {
        return Err("DESIGN.md names no theorems — audit cannot run".into());
    }

    let tests_path = root.join("crates/core/tests/theorems.rs");
    let tests =
        fs::read_to_string(&tests_path).map_err(|e| format!("cannot read theorems.rs: {e}"))?;
    let mut test_names: BTreeSet<String> = BTreeSet::new();
    for (idx, _) in tests.match_indices("#[test]") {
        if let Some(fn_pos) = tests.get(idx..).and_then(|s| s.find("fn ")) {
            let name: String = tests
                .get(idx + fn_pos + 3..)
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                test_names.insert(name);
            }
        }
    }

    for n in theorems {
        let tag = format!("theorem{n}");
        if !test_names.iter().any(|t| t.contains(&tag)) {
            out.push(Violation {
                file: "DESIGN.md".into(),
                line: 0,
                rule: "theorem-coverage",
                excerpt: format!(
                    "Theorem {n} has no `#[test]` in crates/core/tests/theorems.rs \
                     whose name contains `{tag}`"
                ),
            });
        }
    }
    Ok(())
}
