//! The rule families `cargo xtask analyze` runs, each over the token
//! engine in [`crate::engine`], plus the machine-readable rule registry
//! behind `--list-rules` (and DESIGN.md §7, which is generated from it).

pub mod alloc;
pub mod confinement;
pub mod coverage;
pub mod determinism;
pub mod invariants;
pub mod membership;
pub mod panic_freedom;
pub mod print;
pub mod unsafe_audit;

/// Hot-path crate directories (under `crates/`) subject to panic-freedom,
/// print and determinism discipline.
pub const HOT_PATH_CRATES: [&str; 7] = [
    "baselines",
    "core",
    "obs",
    "routing",
    "serve",
    "sim",
    "topology",
];

/// Registry metadata for one rule, as printed by `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name, matching [`crate::engine::Violation::rule`] and the
    /// `rule` key of `allow.toml` entries.
    pub name: &'static str,
    /// Rule family, grouping related rules in DESIGN.md §7.
    pub family: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Why the rule exists — the property it protects.
    pub rationale: &'static str,
}

/// Every rule `cargo xtask analyze` can report, in registry order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unwrap",
        family: "panic-freedom",
        scope: "hot-path crates, non-test",
        rationale: "`.unwrap()` aborts the forwarding hot path on `None`/`Err`; recovery code must degrade, not panic",
    },
    RuleInfo {
        name: "expect",
        family: "panic-freedom",
        scope: "hot-path crates, non-test",
        rationale: "`.expect(..)` is `.unwrap()` with a message; same abort risk on the hot path",
    },
    RuleInfo {
        name: "panic-macro",
        family: "panic-freedom",
        scope: "hot-path crates, non-test",
        rationale: "`panic!`/`unreachable!`/`todo!`/`unimplemented!` abort recovery instead of returning an outcome",
    },
    RuleInfo {
        name: "indexing",
        family: "panic-freedom",
        scope: "hot-path crates, non-test",
        rationale: "`expr[..]` panics out of bounds; hot-path lookups use `get`/typed ids or a justified allow",
    },
    RuleInfo {
        name: "header-mutation",
        family: "paper-invariants",
        scope: "all library code",
        rationale: "Theorem 2's header monotonicity holds only if `failed_links`/`cross_links` mutate solely via the typed setters in crates/sim/src/header.rs",
    },
    RuleInfo {
        name: "header-privacy",
        family: "paper-invariants",
        scope: "crates/sim/src/header.rs",
        rationale: "public header fields would let callers bypass the setters the mutation rule guards",
    },
    RuleInfo {
        name: "float-eq",
        family: "paper-invariants",
        scope: "all library code",
        rationale: "exact `==`/`!=` on link weights is order-sensitive; geometry uses tolerances or documented exact cases",
    },
    RuleInfo {
        name: "theorem-coverage",
        family: "coverage",
        scope: "DESIGN.md + crates/core/tests/theorems.rs",
        rationale: "every theorem stated in DESIGN.md must map to at least one named `#[test]`",
    },
    RuleInfo {
        name: "thread-discipline",
        family: "confinement",
        scope: "everywhere except crates/eval/src/par.rs and crates/serve/src/service.rs",
        rationale: "threads are born in the fork-join executor or the service worker runtime, keeping each determinism argument local to one module",
    },
    RuleInfo {
        name: "simd-discipline",
        family: "confinement",
        scope: "everywhere except crates/topology/src/kernels.rs",
        rationale: "`std::arch`/`core::arch` intrinsics stay behind the one safe, feature-detected `MaskKernel` dispatch",
    },
    RuleInfo {
        name: "linkset-membership",
        family: "membership",
        scope: "crates/core, non-test",
        rationale: "linear `.iter().any(`/`.contains(&` scans hide O(|set|) work per probe; the phase-1 sweep uses the word-parallel bitset API",
    },
    RuleInfo {
        name: "print-discipline",
        family: "print",
        scope: "hot-path crates, non-test",
        rationale: "stdout/stderr belong to the eval writer funnel; hot-path events go through `rtr_obs::TraceSink` so `--trace` observes everything",
    },
    RuleInfo {
        name: "determinism",
        family: "determinism",
        scope: "hot-path crates, non-test",
        rationale: "iteration-order-randomized containers (`HashMap`/`HashSet`), wall clocks (`Instant`/`SystemTime`) and thread-count probes make recovery results depend on the host, breaking byte-identical reproduction",
    },
    RuleInfo {
        name: "unsafe-audit",
        family: "unsafe-audit",
        scope: "all scanned code, tests included",
        rationale: "every `unsafe` block/fn/impl must carry an adjacent `SAFETY:` justification naming the invariant it relies on",
    },
    RuleInfo {
        name: "alloc-discipline",
        family: "allocation",
        scope: "configured steady-state functions",
        rationale: "steady-state recovery (sweep, walk, recover) must not allocate after warm-up; cross-checked by the counting-allocator test in crates/core/tests/alloc_discipline.rs",
    },
    RuleInfo {
        name: "stale-allow",
        family: "allowlist",
        scope: "crates/xtask/allow.toml",
        rationale: "an allowlist entry matching no site is a leftover exemption; remove it so the allowlist stays an exact map of justified sites",
    },
];
