//! Panic-freedom: non-test code of the hot-path crates must not call
//! `.unwrap()` / `.expect(..)`, invoke an aborting macro, or index with
//! `expr[..]`. Every remaining site must match a justified `allow.toml`
//! entry.

use crate::engine::{SourceFile, Violation, NON_INDEX_KEYWORDS};
use crate::lexer::TokKind;

/// Macros that abort instead of returning an outcome.
const ABORT_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic-freedom family over `file`.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        // `.unwrap()` / `.expect(..)` method calls. The token stream makes
        // `.unwrap_or(..)` / `.expect_err(..)` distinct identifiers, so no
        // suffix check is needed.
        if file.ct(p) == "."
            && matches!(file.ct(p + 1), "unwrap" | "expect")
            && file.ct(p + 2) == "("
        {
            let rule = if file.ct(p + 1) == "unwrap" {
                "unwrap"
            } else {
                "expect"
            };
            out.push(file.violation(rule, p + 1));
        }
        // Aborting macros.
        if file.ck(p) == Some(TokKind::Ident)
            && ABORT_MACROS.contains(&file.ct(p))
            && file.ct(p + 1) == "!"
        {
            out.push(file.violation("panic-macro", p));
        }
        // Slice / Vec indexing: `expr[...]` where the previous token ends an
        // expression — an identifier (that is not a keyword), `)`, or `]`.
        // Array literals, types, patterns and attributes all have a
        // non-expression token (or a keyword) before the `[`.
        if file.ct(p) == "[" && p > 0 {
            let prev = p - 1;
            let is_index = match file.ct(prev) {
                ")" | "]" => true,
                word if file.ck(prev) == Some(TokKind::Ident) => {
                    !NON_INDEX_KEYWORDS.contains(&word)
                }
                _ => false,
            };
            if is_index {
                out.push(file.violation("indexing", p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src).unwrap()
    }

    #[test]
    fn panic_freedom_flags_all_constructs() {
        let src = "fn f(v: Vec<u32>) {\n  v.first().unwrap();\n  v.last().expect(\"x\");\n  \
                   panic!(\"boom\");\n  let _ = v[0];\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "panic-macro", "indexing"]);
    }

    #[test]
    fn panic_freedom_ignores_lookalikes() {
        let src = "fn f(v: &[u32], o: Option<u32>) -> Vec<u32> {\n  let _ = o.unwrap_or(3);\n  \
                   for x in [1, 2] { let _ = x; }\n  let a: [u8; 2] = [0; 2];\n  \
                   let _ = &a;\n  v.to_vec()\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn chained_and_paren_indexing_is_flagged() {
        let src = "fn f(v: &Vec<Vec<u32>>) { let _ = v[0][1]; let _ = (v.clone())[0]; }";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn split_method_chains_still_match() {
        // rustfmt puts long chains one call per line; the byte scanner of
        // PR 1 matched `.unwrap` as a substring, the token engine matches
        // `.`-`unwrap`-`(` adjacency regardless of whitespace.
        let src = "fn f(o: Option<u32>) -> u32 {\n  o\n    .unwrap\n    ()\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().map(|v| v.rule), Some("unwrap"));
        // Anchored on the `unwrap` token's line.
        assert_eq!(out.first().map(|v| v.line), Some(3));
    }

    #[test]
    fn strings_comments_and_tests_are_exempt() {
        let src = "fn f() { let _ = \"v.unwrap()\"; } // v.unwrap()\n\
                   #[cfg(test)]\nmod tests {\n  fn t(v: Vec<u32>) { v.first().unwrap(); }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn identifiers_containing_macro_names_are_not_flagged() {
        let src = "fn f() { let my_panic = 1; let _ = my_panic; not_a_panic!(); }";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }
}
