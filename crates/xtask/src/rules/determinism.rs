//! Determinism discipline: result-producing code in the hot-path crates
//! must not name iteration-order-randomized containers, wall clocks, or
//! thread-count probes. The workspace's core contract — byte-identical
//! recovery results at any thread count — survives only if the hot path
//! cannot observe the host.

use crate::engine::{SourceFile, Violation};
use crate::lexer::TokKind;

/// Identifiers whose appearance in hot-path non-test code makes results
/// host-dependent:
///
/// * `HashMap` / `HashSet` — iteration order is randomized per process
///   (`RandomState`); any fold over it is nondeterministic. Use
///   `BTreeMap` / `BTreeSet` / sorted `Vec`s / the bitset API.
/// * `RandomState` / `DefaultHasher` — the per-process random seeds
///   themselves.
/// * `Instant` / `SystemTime` — wall clocks; timing must stay in the
///   bench/eval layers, never feed recovery decisions.
/// * `available_parallelism` — thread-count probes; hot-path behavior must
///   not branch on how many cores the host has.
const DENIED_IDENTS: [&str; 7] = [
    "HashMap",
    "HashSet",
    "RandomState",
    "DefaultHasher",
    "Instant",
    "SystemTime",
    "available_parallelism",
];

/// Runs the determinism rule over `file` (hot-path crates only; the
/// driver handles the scope).
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        if file.ck(p) == Some(TokKind::Ident) && DENIED_IDENTS.contains(&file.ct(p)) {
            out.push(file.violation("determinism", p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs", src).unwrap()
    }

    #[test]
    fn determinism_flags_randomized_containers_and_clocks() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n  let t = std::time::Instant::now();\n  \
                   let n = std::thread::available_parallelism();\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["determinism"; 3], "got: {out:?}");
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 3, 4]);
    }

    #[test]
    fn determinism_ignores_tests_comments_and_lookalike_idents() {
        let src = "//! `HashMap` is banned in hot-path code.\n\
                   fn f(instant_replay: u32) -> u32 { instant_replay }\n\
                   #[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n  \
                   fn t() { let _ = HashSet::<u32>::new(); }\n}\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn determinism_allows_btree_alternatives() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\n\
                   fn f(m: &BTreeMap<u32, u32>) -> Option<&u32> { m.get(&1) }\n";
        let mut out = Vec::new();
        check(&file(src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }
}
