//! Confinement rules: threads are created only in the fork-join executor
//! and the service worker runtime, and CPU intrinsics are named only in
//! the crossing-mask kernel module.

use crate::engine::{SourceFile, Violation};

/// The batch-side file allowed to create threads: the fork-join executor.
pub const THREAD_EXECUTOR: &str = "crates/eval/src/par.rs";

/// The serving-side file allowed to create threads: `rtr-serve`'s worker
/// runtime, where `serve()` scopes its worker and acceptor threads.
pub const SERVE_RUNTIME: &str = "crates/serve/src/service.rs";

/// The one file allowed to name CPU intrinsics: the crossing-mask kernel
/// module, whose safe `MaskKernel` dispatch wraps the AVX2 path.
pub const SIMD_KERNEL_MODULE: &str = "crates/topology/src/kernels.rs";

/// Thread discipline: `thread::spawn` / `thread::scope` only inside the
/// executor module and the service runtime. Everything else must go
/// through `rtr_eval::par` (batch) or `rtr_serve::serve` (serving), so
/// each determinism argument — the scenario-order merge, the
/// one-pool-per-worker session layout — stays local to one module.
pub fn check_thread_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == THREAD_EXECUTOR || file.rel == SERVE_RUNTIME {
        return;
    }
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        if file.ct(p) == "thread"
            && file.ct(p + 1) == "::"
            && matches!(file.ct(p + 2), "spawn" | "scope")
        {
            out.push(file.violation("thread-discipline", p));
        }
    }
}

/// SIMD discipline: `std::arch` / `core::arch` tokens only inside the
/// kernel module. Every intrinsic (and the `unsafe` it drags along) stays
/// behind one safe, feature-detected dispatch point, so the rest of the
/// workspace remains portable stable Rust.
pub fn check_simd_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.rel == SIMD_KERNEL_MODULE {
        return;
    }
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        if matches!(file.ct(p), "std" | "core")
            && file.ct(p + 1) == "::"
            && file.ct(p + 2) == "arch"
        {
            out.push(file.violation("simd-discipline", p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src).unwrap()
    }

    #[test]
    fn thread_discipline_flags_spawns_outside_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); thread::scope(|s| {}); }";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.rule == "thread-discipline"));
    }

    #[test]
    fn thread_discipline_exempts_the_executor_module() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/eval/src/par.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
    }

    #[test]
    fn thread_discipline_exempts_the_serve_runtime() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/serve/src/service.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");
        // Other serve modules stay confined.
        check_thread_discipline(&file("crates/serve/src/load.rs", src), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn simd_discipline_flags_intrinsics_outside_the_kernel_module() {
        let src = "fn f() {\n  use std::arch::x86_64::_mm256_and_si256;\n  \
                   let _ = core::arch::x86_64::_mm_and_si128;\n}\n";
        let mut out = Vec::new();
        check_simd_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.rule == "simd-discipline"));
    }

    #[test]
    fn simd_discipline_exempts_the_kernel_module_and_comments() {
        let src = "fn f() { let _ = std::arch::is_x86_feature_detected!(\"avx2\"); }";
        let mut out = Vec::new();
        check_simd_discipline(&file("crates/topology/src/kernels.rs", src), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");

        // Doc comments naming `std::arch` are comment tokens, never code.
        let doc = "//! Kernels use `std::arch` elsewhere.\nfn f() {}\n";
        check_simd_discipline(&file("crates/core/src/x.rs", doc), &mut out);
        assert!(out.is_empty(), "comment text flagged: {out:?}");
    }

    #[test]
    fn split_paths_still_match() {
        let src = "fn f() {\n  std::thread::\n    spawn(|| {});\n}\n";
        let mut out = Vec::new();
        check_thread_discipline(&file("crates/core/src/x.rs", src), &mut out);
        assert_eq!(out.len(), 1);
    }
}
