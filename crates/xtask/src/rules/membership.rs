//! Link-set membership: non-test code of `rtr-core` must test link-set
//! membership through the word-parallel bitset API (`LinkIdSet::contains`
//! / `LinkBitSet` / crossing masks), not linear scans.

use crate::engine::{SourceFile, Violation};

/// The crate whose non-test code must do link-set membership through the
/// word-parallel bitset API: `rtr-core` holds the phase-1 sweep hot path,
/// where a linear scan hides O(|set|) work per probe.
pub const LINKSET_CRATE_PREFIX: &str = "crates/core/";

/// Flags linear membership idioms in `rtr-core` non-test code:
/// `.iter().any(` chains (token adjacency, so rustfmt-split chains still
/// match) and reference-taking `.contains(&` (slice/`Vec` membership
/// borrows its argument, while the bitset APIs take `LinkId` by value — a
/// clean lexical split between the two).
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel.starts_with(LINKSET_CRATE_PREFIX) {
        return;
    }
    for p in 0..file.len() {
        if file.cin_test(p) {
            continue;
        }
        // `.iter().any(` — anchored on the `any` token so the excerpt
        // shows the predicate, not the receiver.
        if file.ct(p) == "."
            && file.ct(p + 1) == "iter"
            && file.ct(p + 2) == "("
            && file.ct(p + 3) == ")"
            && file.ct(p + 4) == "."
            && file.ct(p + 5) == "any"
            && file.ct(p + 6) == "("
        {
            out.push(file.violation("linkset-membership", p + 5));
        }
        // `.contains(&x)` — the borrowing form is always a linear scan.
        if file.ct(p) == "."
            && file.ct(p + 1) == "contains"
            && file.ct(p + 2) == "("
            && file.ct(p + 3) == "&"
        {
            out.push(file.violation("linkset-membership", p + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src).unwrap()
    }

    #[test]
    fn linkset_membership_flags_linear_scans_in_core() {
        let src =
            "fn f(v: &[L], s: &Set, x: L) -> bool {\n  v\n    .iter()\n    .any(|&l| l == x)\n  \
                   || v.contains(&x)\n}\n";
        let mut out = Vec::new();
        check(&file("crates/core/src/x.rs", src), &mut out);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["linkset-membership"; 2], "got: {out:?}");
        // Split chains anchor on the `.any(` line.
        assert_eq!(out.first().map(|v| v.line), Some(4));
    }

    #[test]
    fn linkset_membership_ignores_bitset_api_and_other_crates() {
        // Value-taking `contains` is the bitset API; `.iter().map(` is not
        // a membership scan; test regions and other crates are exempt.
        let core_ok = "fn f(h: &H, l: L) -> bool {\n  h.cross_links().contains(l)\n    \
                       && h.ids().iter().map(|x| x.0).count() > 0\n}\n\
                       #[cfg(test)]\nmod tests {\n  fn t(v: &[L], x: L) {\n    \
                       assert!(v.iter().any(|&l| l == x) || v.contains(&x));\n  }\n}\n";
        let mut out = Vec::new();
        check(&file("crates/core/src/x.rs", core_ok), &mut out);
        assert!(out.is_empty(), "false positives: {out:?}");

        let eval = "fn f(v: &[L], x: L) -> bool { v.iter().any(|&l| l == x) || v.contains(&x) }";
        check(&file("crates/eval/src/x.rs", eval), &mut out);
        assert!(out.is_empty(), "rule leaked outside crates/core: {out:?}");
    }
}
