//! The `allow.toml` justification flow: every violation either goes away
//! or is matched by an explicit, justified allowlist entry, and entries
//! that no longer match anything are themselves violations (`stale-allow`).

use crate::engine::Violation;
use std::fs;
use std::path::Path;

/// One entry of `crates/xtask/allow.toml`.
#[derive(Debug, Default, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Rule name (`unwrap`, `expect`, `panic-macro`, `indexing`,
    /// `float-eq`, `linkset-membership`, `determinism`, ...).
    pub rule: String,
    /// Substring of the offending source line that identifies the site.
    pub pattern: String,
    /// One-line human justification. Must be non-empty.
    pub justification: String,
}

/// Parses `allow.toml` — a flat sequence of `[[allow]]` tables with string
/// keys `file`, `rule`, `pattern`, `justification` (a deliberate TOML
/// subset; this workspace vendors no TOML parser).
///
/// # Errors
///
/// Malformed lines, unknown keys, and entries missing any of the four
/// required fields are reported with their line number.
pub fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("allow.toml line {}: {what}", lineno + 1);
        if line == "[[allow]]" {
            entries.push(AllowEntry::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected `key = \"value\"` or `[[allow]]`"));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| err("value must be a double-quoted string"))?
            .replace("\\\"", "\"");
        let Some(entry) = entries.last_mut() else {
            return Err(err("key outside any [[allow]] table"));
        };
        match key {
            "file" => entry.file = value,
            "rule" => entry.rule = value,
            "pattern" => entry.pattern = value,
            "justification" => entry.justification = value,
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if e.file.is_empty() || e.rule.is_empty() || e.pattern.is_empty() {
            return Err(format!(
                "allow.toml entry {} is missing file/rule/pattern",
                i + 1
            ));
        }
        if e.justification.trim().is_empty() {
            return Err(format!(
                "allow.toml entry {} ({} / {}) has no justification — every \
                 exemption must say why it is sound",
                i + 1,
                e.file,
                e.rule
            ));
        }
    }
    Ok(entries)
}

/// Splits `violations` into live and allowlisted, appending one
/// `stale-allow` violation for every entry that matched nothing. Returns
/// `(live, allowed_count)`.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    allow: &[AllowEntry],
) -> (Vec<Violation>, usize) {
    let mut used = vec![false; allow.len()];
    let mut live = Vec::new();
    let mut allowed = 0usize;
    for v in violations {
        let hit = allow
            .iter()
            .enumerate()
            .find(|(_, a)| a.file == v.file && a.rule == v.rule && v.excerpt.contains(&a.pattern));
        match hit {
            Some((i, _)) => {
                if let Some(flag) = used.get_mut(i) {
                    *flag = true;
                }
                allowed += 1;
            }
            None => live.push(v),
        }
    }
    for (entry, was_used) in allow.iter().zip(&used) {
        if !was_used {
            live.push(Violation {
                file: "crates/xtask/allow.toml".into(),
                line: 0,
                rule: "stale-allow",
                excerpt: format!(
                    "entry ({} / {} / {:?}) matches no site — remove it",
                    entry.file, entry.rule, entry.pattern
                ),
            });
        }
    }
    (live, allowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parser_round_trips() {
        let dir = std::env::temp_dir().join("xtask-allow-test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("allow.toml");
        fs::write(
            &p,
            "# comment\n[[allow]]\nfile = \"a.rs\"\nrule = \"unwrap\"\n\
             pattern = \"x.unwrap()\"\njustification = \"because\"\n",
        )
        .unwrap();
        let entries = load_allowlist(&p).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "unwrap");
        fs::write(
            &p,
            "[[allow]]\nfile = \"a.rs\"\nrule = \"r\"\npattern = \"p\"\n",
        )
        .unwrap();
        assert!(
            load_allowlist(&p).is_err(),
            "missing justification accepted"
        );
    }

    #[test]
    fn apply_allowlist_splits_and_flags_stale() {
        let entries = vec![
            AllowEntry {
                file: "a.rs".into(),
                rule: "unwrap".into(),
                pattern: "x.unwrap()".into(),
                justification: "ok".into(),
            },
            AllowEntry {
                file: "b.rs".into(),
                rule: "expect".into(),
                pattern: "never-matches".into(),
                justification: "ok".into(),
            },
        ];
        let violations = vec![
            Violation {
                file: "a.rs".into(),
                line: 3,
                rule: "unwrap",
                excerpt: "let y = x.unwrap();".into(),
            },
            Violation {
                file: "a.rs".into(),
                line: 7,
                rule: "unwrap",
                excerpt: "let z = other.unwrap();".into(),
            },
        ];
        let (live, allowed) = apply_allowlist(violations, &entries);
        assert_eq!(allowed, 1);
        // One un-allowed violation plus one stale-allow for the unused entry.
        assert_eq!(live.len(), 2);
        assert!(live.iter().any(|v| v.rule == "stale-allow"));
        assert!(live.iter().any(|v| v.line == 7));
    }
}
