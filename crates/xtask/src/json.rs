//! Minimal JSON reader/writer (bench-check, `analyze --json`; this
//! workspace vendors no JSON crate).

/// A parsed JSON value — just enough for `BENCH_eval.json` and the
/// `analyze --json` report.
#[derive(Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in member order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` on non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes this value as compact JSON with escaped strings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                // Integral values print without a fractional part so line
                // numbers and counts read naturally.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a JSON string literal with `"`, `\` and control
/// characters escaped.
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over the full input (trailing garbage is
/// an error). Covers objects, arrays, strings with `\`-escapes, numbers,
/// literals.
///
/// # Errors
///
/// Reports the byte offset of the first malformed construct.
pub fn json_parse(text: &str) -> Result<JsonValue, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let value = json_value(b, &mut pos)?;
    json_skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn byte_at(s: &[u8], i: usize) -> u8 {
    s.get(i).copied().unwrap_or(0)
}

fn json_skip_ws(b: &[u8], pos: &mut usize) {
    while byte_at(b, *pos).is_ascii_whitespace() && *pos < b.len() {
        *pos += 1;
    }
}

fn json_expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    json_skip_ws(b, pos);
    if byte_at(b, *pos) != c {
        return Err(format!("expected `{}` at byte {}", c as char, *pos));
    }
    *pos += 1;
    Ok(())
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    json_skip_ws(b, pos);
    match byte_at(b, *pos) {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            json_skip_ws(b, pos);
            if byte_at(b, *pos) == b'}' {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                json_skip_ws(b, pos);
                let key = json_string(b, pos)?;
                json_expect(b, pos, b':')?;
                members.push((key, json_value(b, pos)?));
                json_skip_ws(b, pos);
                match byte_at(b, *pos) {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            json_skip_ws(b, pos);
            if byte_at(b, *pos) == b']' {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(json_value(b, pos)?);
                json_skip_ws(b, pos);
                match byte_at(b, *pos) {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        b'"' => json_string(b, pos).map(JsonValue::Str),
        b't' if b.get(*pos..*pos + 4) == Some(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        b'f' if b.get(*pos..*pos + 5) == Some(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        b'n' if b.get(*pos..*pos + 4) == Some(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        _ => {
            let start = *pos;
            if byte_at(b, *pos) == b'-' {
                *pos += 1;
            }
            while matches!(
                byte_at(b, *pos),
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            ) {
                *pos += 1;
            }
            let tok = b
                .get(start..*pos)
                .map(String::from_utf8_lossy)
                .unwrap_or_default();
            tok.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid value at byte {start}"))
        }
    }
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    json_expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < b.len() {
        match byte_at(b, *pos) {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => {
                let esc = byte_at(b, *pos + 1);
                out.push(match esc {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    other => other, // `\"`, `\\`, `\/` — good enough here
                });
                *pos += 2;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reader_handles_the_recorder_schema() {
        let doc = json_parse(
            "{\n  \"host_parallelism\": 8,\n  \"topologies\": [\n    \
             {\"name\": \"AS3549\", \"serial_secs\": 0.0713, \"sweep_secs\": 1.5e-3},\n    \
             {\"name\": \"AS209\", \"serial_secs\": 0.0014, \"sweep_secs\": 0.0002}\n  ]\n}",
        )
        .unwrap();
        let rows = doc.get("topologies").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("name").and_then(JsonValue::as_str),
            Some("AS3549")
        );
        assert_eq!(
            rows[0].get("sweep_secs").and_then(JsonValue::as_f64),
            Some(1.5e-3)
        );
        assert_eq!(
            doc.get("host_parallelism").and_then(JsonValue::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn json_reader_rejects_garbage() {
        assert!(json_parse("{\"a\": }").is_err());
        assert!(json_parse("[1, 2").is_err());
        assert!(json_parse("{} trailing").is_err());
        assert!(json_parse("\"unterminated").is_err());
        // Literals and escapes round-trip.
        assert_eq!(json_parse("null").unwrap(), JsonValue::Null);
        assert_eq!(json_parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            json_parse("\"a\\\"b\"").unwrap(),
            JsonValue::Str("a\"b".into())
        );
        assert_eq!(json_parse("-2.5e1").unwrap(), JsonValue::Num(-25.0));
    }

    #[test]
    fn emitter_escapes_and_round_trips() {
        let v = JsonValue::Obj(vec![
            ("s".into(), JsonValue::Str("a\"b\\c\nd".into())),
            ("n".into(), JsonValue::Num(42.0)),
            ("x".into(), JsonValue::Num(0.25)),
            (
                "a".into(),
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        let text = v.to_json();
        let back = json_parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("n").and_then(JsonValue::as_f64), Some(42.0));
    }
}
