//! Corpus test: the hand-rolled lexer must handle every `.rs` file in this
//! workspace — losslessly, with sane spans — since `cargo xtask analyze`
//! runs over exactly that corpus. A file the lexer chokes on is a file the
//! static-analysis pass silently cannot police.

use xtask::engine::{collect_rs_files, workspace_root, SourceFile};
use xtask::lexer::lex;

#[test]
fn every_workspace_file_lexes_losslessly() {
    let root = workspace_root().expect("workspace root resolvable from xtask");
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files).expect("crates/ is walkable");
    assert!(
        files.len() >= 40,
        "corpus suspiciously small: {} files",
        files.len()
    );

    for path in &files {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let toks = lex(&src).unwrap_or_else(|e| panic!("lex {}: {e:?}", path.display()));

        // Spans are in-bounds, non-empty, strictly ordered, and
        // non-overlapping; the bytes between tokens are pure whitespace.
        let mut prev_hi = 0usize;
        for t in &toks {
            assert!(t.lo < t.hi, "{}: empty span {t:?}", path.display());
            assert!(t.hi <= src.len(), "{}: span out of bounds", path.display());
            assert!(
                t.lo >= prev_hi,
                "{}: overlapping tokens at byte {}",
                path.display(),
                t.lo
            );
            let gap = src.get(prev_hi..t.lo).expect("gap is valid UTF-8 range");
            assert!(
                gap.chars().all(char::is_whitespace),
                "{}: non-whitespace bytes {gap:?} dropped before byte {}",
                path.display(),
                t.lo
            );
            prev_hi = t.hi;
        }
        let tail = src.get(prev_hi..).expect("tail is valid UTF-8 range");
        assert!(
            tail.chars().all(char::is_whitespace),
            "{}: non-whitespace trailing bytes dropped",
            path.display()
        );

        // The rule engine's richer pass (test-region marking, line table)
        // must accept the file too.
        let rel = path
            .strip_prefix(&root)
            .expect("collected under root")
            .to_string_lossy()
            .replace('\\', "/");
        SourceFile::parse(&rel, &src)
            .unwrap_or_else(|e| panic!("SourceFile::parse {}: {e}", path.display()));
    }
}
