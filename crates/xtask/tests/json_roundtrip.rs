//! `analyze --json` output must round-trip through the workspace's own
//! JSON parser: CI consumers (and the GitHub annotation step) parse what
//! the emitter prints.

use xtask::engine::Violation;
use xtask::json::{json_parse, JsonValue};
use xtask::{report_to_github, report_to_json, AnalyzeReport};

fn sample_report() -> AnalyzeReport {
    AnalyzeReport {
        files_scanned: 96,
        hot_files: 36,
        allowed: 25,
        violations: vec![
            Violation {
                file: "crates/core/src/sweep.rs".into(),
                line: 42,
                rule: "determinism",
                excerpt: "let m: HashMap<u32, u32> = HashMap::new();".into(),
            },
            Violation {
                file: "crates/xtask/src/json.rs".into(),
                line: 7,
                rule: "float-eq",
                excerpt: "tricky \"quotes\" and\nnewline".into(),
            },
        ],
    }
}

#[test]
fn json_report_round_trips() {
    let report = sample_report();
    let text = report_to_json(&report);
    let parsed = json_parse(&text).expect("emitter output parses");

    assert_eq!(parsed.get("ok").and_then(JsonValue::as_str), None);
    assert!(matches!(parsed.get("ok"), Some(JsonValue::Bool(false))));
    assert_eq!(
        parsed.get("files_scanned").and_then(JsonValue::as_f64),
        Some(96.0)
    );
    assert_eq!(
        parsed.get("hot_files").and_then(JsonValue::as_f64),
        Some(36.0)
    );
    assert_eq!(
        parsed.get("allowed").and_then(JsonValue::as_f64),
        Some(25.0)
    );

    let vs = parsed
        .get("violations")
        .and_then(JsonValue::as_array)
        .expect("violations array");
    assert_eq!(vs.len(), 2);
    let first = &vs[0];
    assert_eq!(
        first.get("file").and_then(JsonValue::as_str),
        Some("crates/core/src/sweep.rs")
    );
    assert_eq!(first.get("line").and_then(JsonValue::as_f64), Some(42.0));
    assert_eq!(
        first.get("rule").and_then(JsonValue::as_str),
        Some("determinism")
    );
    // Escaped quotes and newlines survive the trip.
    assert_eq!(
        vs[1].get("excerpt").and_then(JsonValue::as_str),
        Some("tricky \"quotes\" and\nnewline")
    );
}

#[test]
fn clean_report_is_ok_and_empty() {
    let report = AnalyzeReport {
        files_scanned: 10,
        hot_files: 4,
        allowed: 0,
        violations: Vec::new(),
    };
    assert!(report.ok());
    let parsed = json_parse(&report_to_json(&report)).expect("parses");
    assert!(matches!(parsed.get("ok"), Some(JsonValue::Bool(true))));
    let vs = parsed
        .get("violations")
        .and_then(JsonValue::as_array)
        .expect("violations array");
    assert!(vs.is_empty());
}

#[test]
fn github_annotations_escape_newlines() {
    let report = sample_report();
    let gh = report_to_github(&report);
    let lines: Vec<&str> = gh.lines().collect();
    assert_eq!(lines.len(), 2, "one annotation line per violation:\n{gh}");
    assert!(lines[0].starts_with("::error file=crates/core/src/sweep.rs,line=42::"));
    assert!(lines[1].contains("%0A"), "newline must be %0A-escaped");
    assert!(!lines[1].contains('\n') || gh.ends_with('\n'));
}
