//! Property tests for the analyze lexer.
//!
//! The vendored proptest stand-in has no string strategies, so inputs are
//! composed from fragment tables indexed by generated `usize`s: a random
//! sequence of code fragments is glued together with random *separators*
//! (whitespace and comments), and the code-token stream must not care
//! which separators were chosen — comments and spacing are noise to every
//! rule built on the engine.

use proptest::prelude::*;
use xtask::lexer::{lex, TokKind};

/// Code fragments that are valid token sequences on their own.
const FRAGMENTS: [&str; 12] = [
    "fn foo()",
    "let x = a.unwrap();",
    "vec![1, 2]",
    "h.cross_links &= mask;",
    "x.collect::<Vec<_>>()",
    "let s = \"str // not a comment\";",
    "let c = 'a';",
    "let lt: &'static str = r\"raw\";",
    "if a == b { panic!(\"no\") }",
    "m[i] += 1.0;",
    "#[cfg(test)] mod t {}",
    "let r = r#\"raw \" inside\"#;",
];

/// Separators that must be invisible to the code-token stream.
const SEPARATORS: [&str; 8] = [
    " ",
    "\n",
    "\t\n  ",
    "// line comment\n",
    "/* block */",
    "/* nested /* block */ */",
    "//! doc line\n",
    "/** doc block */",
];

/// Pieces safe to embed inside a double-quoted string literal.
const STRING_PIECES: [&str; 8] = [
    "abc",
    "// not a comment",
    "/* not a block */",
    "\\\"escaped quote",
    "\\\\",
    "'c'",
    "ident_like",
    "1.5e3",
];

/// The (kind, text) stream of non-comment tokens.
fn code_stream(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .unwrap_or_else(|e| panic!("lex failed on {src:?}: {e:?}"))
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| {
            let text = src
                .get(t.lo..t.hi)
                .expect("token spans are valid")
                .to_owned();
            (t.kind, text)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Gluing the same fragments with different separators yields the
    /// same code-token stream as gluing them with single spaces.
    #[test]
    fn code_tokens_invariant_under_separator_choice(
        picks in proptest::collection::vec((0..FRAGMENTS.len(), 0..SEPARATORS.len()), 1..8),
    ) {
        let mut with_seps = String::new();
        let mut with_spaces = String::new();
        for &(f, s) in &picks {
            with_seps.push_str(FRAGMENTS[f]);
            with_seps.push_str(SEPARATORS[s]);
            with_spaces.push_str(FRAGMENTS[f]);
            with_spaces.push(' ');
        }
        prop_assert_eq!(code_stream(&with_seps), code_stream(&with_spaces));
    }

    /// Comment-looking and code-looking text inside a string literal never
    /// leaks tokens: the whole literal is one `Literal` token, and the
    /// surrounding code tokens are unaffected.
    #[test]
    fn string_contents_stay_one_literal(
        pieces in proptest::collection::vec(0..STRING_PIECES.len(), 0..6),
    ) {
        let mut body = String::new();
        for &p in &pieces {
            body.push_str(STRING_PIECES[p]);
        }
        let src = format!("let s = \"{body}\"; done");
        let toks = code_stream(&src);
        // let s = "..." ; done  =>  exactly 6 code tokens.
        prop_assert_eq!(toks.len(), 6, "tokens: {:?}", toks);
        prop_assert_eq!(toks[3].0, TokKind::Literal);
        let quoted = format!("\"{body}\"");
        prop_assert_eq!(toks[3].1.as_str(), quoted.as_str());
        prop_assert_eq!(toks[5].1.as_str(), "done");
    }
}
