//! End-to-end integration tests spanning every crate: topology generation →
//! routing → failure injection → five-scheme recovery → metrics.

use rtr::baselines::{Emrc, Fcp, Mrc, RecoveryScheme, SchemeCtx};
use rtr::core::{DeliveryOutcome, Phase1Termination, RtrSession, SchemeScratch};
use rtr::routing::{shortest_path, RoutingTable};
use rtr::sim::{CaseKind, DelayModel, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

/// The paper's Fig. 1/2 situation: a failure area in the middle of a
/// network, a source whose path crossed it, and a full recovery.
#[test]
fn paper_walkthrough_on_a_twin() {
    let topo = isp::profile("AS209").unwrap().synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    // Centre the failure on the densest node so the region reliably swallows
    // part of the core (magic coordinates would silently depend on the RNG
    // stream behind the synthesized embedding).
    let hub = topo.node_ids().max_by_key(|&n| topo.degree(n)).unwrap();
    let c = topo.position(hub);
    let region = Region::circle((c.x, c.y), 220.0);
    let scenario = FailureScenario::from_region(&topo, &region);
    let net = Network::new(&topo, &scenario, &table);

    let mut recovered = 0;
    let mut cases = 0;
    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            if let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            {
                cases += 1;
                let mut session =
                    RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                        .expect("recoverable case: live initiator with a failed incident link");
                let attempt = session.recover(t);
                if attempt.is_delivered() {
                    recovered += 1;
                    // Theorem 2 end to end.
                    let opt = shortest_path(&topo, &scenario, initiator, t)
                        .unwrap()
                        .cost();
                    assert_eq!(attempt.path.unwrap().cost(), opt);
                }
            }
        }
    }
    assert!(cases > 0, "the failure must break some paths");
    assert!(
        recovered as f64 / cases as f64 > 0.9,
        "recovered only {recovered}/{cases}"
    );
}

/// The schemes agree on the easy cases and diverge exactly where the
/// paper says: FCP always delivers recoverable traffic but pays in
/// computation; MRC drops second failures; eMRC recovers at least as
/// many of them as MRC. All comparators run behind the
/// [`RecoveryScheme`] trait.
#[test]
fn schemes_disagree_as_published() {
    let topo = isp::profile("AS4323").unwrap().synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    let ctx = SchemeCtx {
        topo: &topo,
        crosslinks: &crosslinks,
        table: &table,
    };
    let mrc = Mrc::build(&topo, 5).unwrap();
    let emrc = Emrc::build(&topo, 5).unwrap();
    let mut scratch = SchemeScratch::new();
    // Anchor the failure at the densest node (see paper_walkthrough_on_a_twin).
    let hub = topo.node_ids().max_by_key(|&n| topo.degree(n)).unwrap();
    let c = topo.position(hub);
    let region = Region::circle((c.x, c.y), 300.0);
    let scenario = FailureScenario::from_region(&topo, &region);
    let net = Network::new(&topo, &scenario, &table);

    let mut fcp_total_calcs = 0usize;
    let mut rtr_initiators = std::collections::BTreeSet::new();
    let mut mrc_drops = 0usize;
    let mut emrc_delivered = 0usize;
    let mut mrc_delivered = 0usize;
    let mut cases = 0usize;
    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            if let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            {
                cases += 1;
                rtr_initiators.insert(initiator);
                let fcp = Fcp.route_in(ctx, &scenario, initiator, failed_link, t, &mut scratch);
                assert!(
                    fcp.is_delivered(),
                    "FCP always delivers recoverable traffic"
                );
                fcp_total_calcs += fcp.sp_calculations;
                let m = mrc.route_in(ctx, &scenario, initiator, failed_link, t, &mut scratch);
                if m.is_delivered() {
                    mrc_delivered += 1;
                } else {
                    mrc_drops += 1;
                }
                let e = emrc.route_in(ctx, &scenario, initiator, failed_link, t, &mut scratch);
                if e.is_delivered() {
                    emrc_delivered += 1;
                }
            }
        }
    }
    assert!(cases > 0);
    // RTR needs one SPT per initiator; FCP needed at least one calculation
    // per case (usually more).
    assert!(fcp_total_calcs >= cases);
    assert!(
        rtr_initiators.len() < cases,
        "initiators are shared across destinations"
    );
    assert!(
        mrc_drops > 0,
        "large-scale failures must defeat MRC somewhere"
    );
    assert!(
        emrc_delivered >= mrc_delivered,
        "re-switching can only help: eMRC {emrc_delivered} < MRC {mrc_delivered}"
    );
}

/// Phase-1 traces respect the delay model end to end (Fig. 7's pipeline).
#[test]
fn phase1_durations_follow_delay_model() {
    let topo = isp::profile("AS701").unwrap().synthesize();
    let crosslinks = CrossLinkTable::new(&topo);
    let scenario = FailureScenario::from_region(&topo, &Region::circle((500.0, 500.0), 150.0));
    let delay = DelayModel::PAPER;

    for n in topo.node_ids() {
        if scenario.is_node_failed(n) {
            continue;
        }
        let Some(&(_, dead)) = topo
            .neighbors(n)
            .iter()
            .find(|&&(_, l)| !scenario.is_neighbor_reachable(&topo, n, l))
        else {
            continue;
        };
        let has_live = topo
            .neighbors(n)
            .iter()
            .any(|&(_, l)| scenario.is_neighbor_reachable(&topo, n, l));
        if !has_live {
            continue;
        }
        let session = RtrSession::start(&topo, &crosslinks, &scenario, n, dead)
            .expect("recoverable case: live initiator with a failed incident link");
        let p1 = session.phase1();
        assert_eq!(p1.termination, Phase1Termination::Completed);
        let d = p1.trace.duration(&delay);
        assert_eq!(d.as_micros(), p1.trace.hops() as u64 * 1_800);
    }
}

/// The irrecoverable pipeline: RTR identifies lost destinations with one
/// calculation and almost no wasted forwarding.
#[test]
fn irrecoverable_traffic_is_cut_off_quickly() {
    let topo = isp::profile("AS1239").unwrap().synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    // A big hole that partitions the sparse twin.
    let region = Region::circle((1000.0, 1000.0), 420.0);
    let scenario = FailureScenario::from_region(&topo, &region);
    let net = Network::new(&topo, &scenario, &table);

    let mut found = 0;
    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            if let CaseKind::Irrecoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            {
                found += 1;
                let mut session =
                    RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                        .expect("recoverable case: live initiator with a failed incident link");
                let attempt = session.recover(t);
                assert!(!attempt.is_delivered());
                // RTR spends exactly one calculation, and the discard walk
                // is no longer than the believed path.
                assert_eq!(session.sp_calculations(), 1);
                if attempt.outcome == DeliveryOutcome::NoPath {
                    assert_eq!(attempt.trace.hops(), 0);
                }
            }
        }
    }
    assert!(
        found > 0,
        "a radius-420 hole should partition AS1239's twin"
    );
}

/// The full experiment harness runs end to end at a tiny scale and its
/// reports hold the paper's qualitative results.
#[test]
fn harness_end_to_end_tiny_scale() {
    let cfg = rtr::eval::ExperimentConfig::quick().with_cases(80);
    let results = rtr::eval::run_topologies(&["AS209".to_string()], &cfg)
        .expect("AS209 is a Table II topology");
    assert_eq!(results.len(), 1);
    let h = rtr::eval::reports::headline(&results);
    assert!(h.rtr_optimal_recovery_rate > 80.0);
    assert!(h.computation_saving_pct > 0.0);
    assert!(h.transmission_saving_pct > 0.0);

    let t3 = rtr::eval::reports::table3(&results);
    assert!(t3.to_string().contains("AS209"));
    let f7 = rtr::eval::reports::fig7(&results);
    assert_eq!(f7.series.len(), 1);
}

/// Loading a topology from the text format and recovering on it exercises
/// the parser together with the whole stack.
#[test]
fn recovery_on_parsed_topology() {
    let topo = isp::profile("AS209").unwrap().synthesize();
    let text = isp::to_text(&topo);
    let parsed = isp::parse_topology(&text).unwrap();
    let crosslinks = CrossLinkTable::new(&parsed);
    let scenario = FailureScenario::from_region(&parsed, &Region::circle((1000.0, 1000.0), 250.0));
    let entry = parsed.node_ids().find_map(|n| {
        if scenario.is_node_failed(n) {
            return None;
        }
        let dead = topo
            .neighbors(n)
            .iter()
            .find(|&&(_, l)| !scenario.is_neighbor_reachable(&parsed, n, l))?;
        let live = topo
            .neighbors(n)
            .iter()
            .any(|&(_, l)| scenario.is_neighbor_reachable(&parsed, n, l));
        live.then_some((n, dead.1))
    });
    let Some((initiator, failed)) = entry else {
        panic!("fixture should produce an entry point");
    };
    let session = RtrSession::start(&parsed, &crosslinks, &scenario, initiator, failed)
        .expect("recoverable case: live initiator with a failed incident link");
    assert!(session.phase1().is_complete());
}
