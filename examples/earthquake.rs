//! Earthquake scenario: a large disaster partitions an ISP network, many
//! destinations become unreachable, and the network must both recover what
//! is recoverable and stop wasting resources on what is not.
//!
//! Models the motivating events of the paper's introduction (Hurricane
//! Katrina, the 2006 Taiwan and 2008 Wenchuan earthquakes): a wide failure
//! area, every affected router reacting independently, and a comparison of
//! RTR against FCP on both recoverable and irrecoverable traffic. Run with:
//!
//! ```text
//! cargo run --release --example earthquake
//! ```

use rtr::baselines::{Fcp, RecoveryScheme, SchemeCtx};
use rtr::core::{Phase1Error, RtrSession, SchemeScratch};
use rtr::routing::RoutingTable;
use rtr::sim::{CaseKind, DelayModel, Network, PAYLOAD_BYTES};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, NodeId, Region};
use std::collections::btree_map::Entry;

fn main() {
    // AS7018's twin: the sparsest Table II topology (115 routers, 148
    // links) — the one that partitions most easily.
    let topo = isp::profile("AS7018")
        .expect("AS7018 is in Table II")
        .synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);

    // The earthquake: a 420-radius hole off-centre (about 14% of the area).
    let epicentre = (700.0, 900.0);
    let region = Region::circle(epicentre, 420.0);
    let scenario = FailureScenario::from_region(&topo, &region);
    println!(
        "earthquake at {:?}: {} of {} routers destroyed, {} links cut",
        epicentre,
        scenario.failed_node_count(),
        topo.node_count(),
        scenario.failed_link_count()
    );

    // Classify every (source, destination) pair the way §IV-A does.
    let net = Network::new(&topo, &scenario, &table);
    let mut recoverable = Vec::new();
    let mut irrecoverable = Vec::new();
    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            match net.classify(s, t) {
                CaseKind::Recoverable {
                    initiator,
                    failed_link,
                } => {
                    recoverable.push((initiator, failed_link, t));
                }
                CaseKind::Irrecoverable {
                    initiator,
                    failed_link,
                } => {
                    irrecoverable.push((initiator, failed_link, t));
                }
                _ => {}
            }
        }
    }
    println!(
        "failed routing paths: {} recoverable, {} irrecoverable\n",
        recoverable.len(),
        irrecoverable.len()
    );

    // Each distinct initiator runs phase 1 once; its session then serves
    // every destination. Count aggregate effort.
    let delay = DelayModel::PAPER;
    let mut sessions: std::collections::BTreeMap<(NodeId, u32), RtrSession<'_, _>> =
        Default::default();
    let mut delivered = 0usize;
    let mut optimal = 0usize;
    for &(initiator, failed_link, dest) in &recoverable {
        let key = (initiator, 0u32);
        let session = sessions.entry(key).or_insert_with(|| {
            RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                .expect("recoverable case: live initiator with a failed incident link")
        });
        let attempt = session.recover(dest);
        if attempt.is_delivered() {
            delivered += 1;
            let opt = rtr::routing::shortest_path(&topo, &scenario, initiator, dest)
                .expect("recoverable")
                .cost();
            if attempt.path.as_ref().map(|p| p.cost()) == Some(opt) {
                optimal += 1;
            }
        }
    }
    let phase1_ms: Vec<f64> = sessions
        .values()
        .map(|s| s.phase1().trace.duration(&delay).as_millis_f64())
        .collect();
    println!("RTR on recoverable traffic:");
    println!(
        "  {} initiators ran phase 1 (longest {:.1} ms)",
        sessions.len(),
        phase1_ms.iter().fold(0.0f64, |a, &b| a.max(b))
    );
    println!(
        "  delivered {delivered}/{} ({} of them provably optimal)",
        recoverable.len(),
        optimal
    );
    println!(
        "  shortest-path calculations: {} (one per initiator-destination pair)",
        sessions
            .values()
            .map(|s| s.sp_calculations())
            .sum::<usize>()
    );

    // Irrecoverable traffic: compare wasted work, RTR vs FCP.
    let ctx = SchemeCtx {
        topo: &topo,
        crosslinks: &crosslinks,
        table: &table,
    };
    let mut scratch = SchemeScratch::new();
    let mut rtr_wasted_bytes = 0u64;
    let mut fcp_wasted_bytes = 0u64;
    let mut fcp_wasted_calcs = 0usize;
    let mut rtr_wasted_calcs = 0usize;
    for &(initiator, failed_link, dest) in &irrecoverable {
        let key = (initiator, 0u32);
        let session = match sessions.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(slot) => {
                match RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link) {
                    Ok(session) => slot.insert(session),
                    // A fully isolated initiator cannot even emit a
                    // collection packet, so RTR wastes neither computation
                    // nor transmission on its traffic.
                    Err(Phase1Error::NoLiveNeighbor { .. }) => continue,
                    Err(e) => panic!("irrecoverable case could not start a session: {e}"),
                }
            }
        };
        let attempt = session.recover(dest);
        assert!(!attempt.is_delivered());
        rtr_wasted_calcs += 1;
        rtr_wasted_bytes += attempt
            .trace
            .steps()
            .iter()
            .take(attempt.trace.steps().len().saturating_sub(1))
            .map(|s| (PAYLOAD_BYTES + s.header_bytes) as u64)
            .sum::<u64>();

        let fcp = Fcp.route_in(ctx, &scenario, initiator, failed_link, dest, &mut scratch);
        assert!(!fcp.is_delivered());
        fcp_wasted_calcs += fcp.sp_calculations;
        fcp_wasted_bytes += fcp
            .trace
            .steps()
            .iter()
            .take(fcp.trace.steps().len().saturating_sub(1))
            .map(|s| (PAYLOAD_BYTES + s.header_bytes) as u64)
            .sum::<u64>();
    }
    println!("\nwasted effort on irrecoverable traffic (lower is better):");
    println!("  RTR: {rtr_wasted_calcs} SP calculations, {rtr_wasted_bytes} bytes forwarded");
    println!("  FCP: {fcp_wasted_calcs} SP calculations, {fcp_wasted_bytes} bytes forwarded");
    if fcp_wasted_calcs > 0 {
        println!(
            "  RTR saves {:.1}% computation and {:.1}% transmission",
            100.0 * (1.0 - rtr_wasted_calcs as f64 / fcp_wasted_calcs as f64),
            100.0 * (1.0 - rtr_wasted_bytes as f64 / fcp_wasted_bytes as f64),
        );
    }
}
