//! Head-to-head comparison of RTR, FCP, and MRC on one random disaster —
//! a miniature, human-readable version of the paper's Table III.
//!
//! Run with (topology name and radius optional):
//!
//! ```text
//! cargo run --release --example compare_schemes -- AS701 280
//! ```

use rtr::baselines::{fcp_route, mrc_recover, Mrc};
use rtr::core::RtrSession;
use rtr::routing::{shortest_path, RoutingTable};
use rtr::sim::{CaseKind, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "AS701".into());
    let radius: f64 = args
        .next()
        .map_or(280.0, |r| r.parse().expect("radius must be a number"));

    let profile = isp::profile(&name).unwrap_or_else(|| {
        eprintln!("unknown topology {name}; pick one of Table II (AS209, AS701, ...)");
        std::process::exit(2);
    });
    let topo = profile.synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    let mrc = Mrc::build(&topo, 5).expect("Table II twins are connected");

    let region = Region::circle((1000.0, 1000.0), radius);
    let scenario = FailureScenario::from_region(&topo, &region);
    println!(
        "{name}: radius-{radius} failure kills {} routers, cuts {} links",
        scenario.failed_node_count(),
        scenario.failed_link_count()
    );

    let net = Network::new(&topo, &scenario, &table);
    let mut sessions: std::collections::BTreeMap<_, RtrSession<'_, _>> = Default::default();
    let mut rows = Stats::default();

    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            else {
                continue;
            };
            rows.cases += 1;
            let optimal = shortest_path(&topo, &scenario, initiator, t)
                .expect("recoverable")
                .cost();

            let session = sessions.entry(initiator).or_insert_with(|| {
                RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                    .expect("recoverable case: live initiator with a failed incident link")
            });
            let rtr = session.recover(t);
            if rtr.is_delivered() {
                rows.rtr_delivered += 1;
                rows.rtr_stretch_sum += rtr.path.unwrap().cost() as f64 / optimal as f64;
            }

            let fcp = fcp_route(&topo, &scenario, initiator, failed_link, t);
            if fcp.is_delivered() {
                rows.fcp_delivered += 1;
                rows.fcp_stretch_sum += fcp.cost_traversed as f64 / optimal as f64;
                rows.fcp_calcs += fcp.sp_calculations;
            }

            let m = mrc_recover(&topo, &mrc, &scenario, initiator, failed_link, t);
            if m.is_delivered() {
                rows.mrc_delivered += 1;
                rows.mrc_stretch_sum += m.cost_traversed as f64 / optimal as f64;
            }
        }
    }

    let pct = |n: usize| 100.0 * n as f64 / rows.cases.max(1) as f64;
    println!("\nrecoverable cases: {}", rows.cases);
    println!("scheme  recovery%   avg stretch   SP calcs");
    println!(
        "RTR     {:8.1}   {:11.3}   {:>8}",
        pct(rows.rtr_delivered),
        rows.rtr_stretch_sum / rows.rtr_delivered.max(1) as f64,
        sessions.len() // one SPT per initiator serves every destination
    );
    println!(
        "FCP     {:8.1}   {:11.3}   {:>8}",
        pct(rows.fcp_delivered),
        rows.fcp_stretch_sum / rows.fcp_delivered.max(1) as f64,
        rows.fcp_calcs
    );
    println!(
        "MRC     {:8.1}   {:11.3}   {:>8}",
        pct(rows.mrc_delivered),
        rows.mrc_stretch_sum / rows.mrc_delivered.max(1) as f64,
        "0 (precomputed)"
    );
}

#[derive(Default)]
struct Stats {
    cases: usize,
    rtr_delivered: usize,
    rtr_stretch_sum: f64,
    fcp_delivered: usize,
    fcp_stretch_sum: f64,
    fcp_calcs: usize,
    mrc_delivered: usize,
    mrc_stretch_sum: f64,
}
