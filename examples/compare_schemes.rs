//! Head-to-head comparison of all five recovery schemes on one random
//! disaster — a miniature, human-readable version of the paper's
//! Table III, driven through the [`RecoveryScheme`] trait.
//!
//! Run with (topology name and radius optional):
//!
//! ```text
//! cargo run --release --example compare_schemes -- AS701 280
//! ```

use rtr::baselines::{Emrc, Fcp, Fep, Mrc, RecoveryScheme, SchemeCtx};
use rtr::core::{RtrSession, SchemeScratch};
use rtr::routing::{shortest_path, RoutingTable};
use rtr::sim::{CaseKind, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "AS701".into());
    let radius: f64 = args
        .next()
        .map_or(280.0, |r| r.parse().expect("radius must be a number"));

    let profile = isp::profile(&name).unwrap_or_else(|| {
        eprintln!("unknown topology {name}; pick one of Table II (AS209, AS701, ...)");
        std::process::exit(2);
    });
    let topo = profile.synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    let ctx = SchemeCtx {
        topo: &topo,
        crosslinks: &crosslinks,
        table: &table,
    };
    let comparators: Vec<Box<dyn RecoveryScheme>> = vec![
        Box::new(Fcp),
        Box::new(Mrc::build(&topo, 5).expect("Table II twins are connected")),
        Box::new(Emrc::build(&topo, 5).expect("Table II twins are connected")),
        Box::new(Fep::build(&topo)),
    ];

    let region = Region::circle((1000.0, 1000.0), radius);
    let scenario = FailureScenario::from_region(&topo, &region);
    println!(
        "{name}: radius-{radius} failure kills {} routers, cuts {} links",
        scenario.failed_node_count(),
        scenario.failed_link_count()
    );

    let net = Network::new(&topo, &scenario, &table);
    let mut sessions: std::collections::BTreeMap<_, RtrSession<'_, _>> = Default::default();
    let mut scratch = SchemeScratch::new();
    let mut rtr_stats = Stats::default();
    let mut stats = vec![Stats::default(); comparators.len()];
    let mut cases = 0usize;

    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            else {
                continue;
            };
            cases += 1;
            let optimal = shortest_path(&topo, &scenario, initiator, t)
                .expect("recoverable")
                .cost();

            // RTR keeps its session so one phase 1 serves every
            // destination of an initiator — the paper's deployment model.
            let session = sessions.entry(initiator).or_insert_with(|| {
                RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                    .expect("recoverable case: live initiator with a failed incident link")
            });
            let rtr = session.recover(t);
            if rtr.is_delivered() {
                rtr_stats.delivered += 1;
                rtr_stats.stretch_sum += rtr.path.unwrap().cost() as f64 / optimal as f64;
            }

            for (scheme, st) in comparators.iter().zip(&mut stats) {
                let a = scheme.route_in(ctx, &scenario, initiator, failed_link, t, &mut scratch);
                if a.is_delivered() {
                    st.delivered += 1;
                    st.stretch_sum += a.cost_traversed as f64 / optimal as f64;
                }
                st.calcs += a.sp_calculations;
            }
        }
    }

    let pct = |n: usize| 100.0 * n as f64 / cases.max(1) as f64;
    println!("\nrecoverable cases: {cases}");
    println!("scheme  recovery%   avg stretch   SP calcs");
    println!(
        "RTR     {:8.1}   {:11.3}   {:>8}",
        pct(rtr_stats.delivered),
        rtr_stats.stretch_sum / rtr_stats.delivered.max(1) as f64,
        sessions.len() // one SPT per initiator serves every destination
    );
    for (scheme, st) in comparators.iter().zip(&stats) {
        println!(
            "{:<7} {:8.1}   {:11.3}   {:>8}",
            scheme.name(),
            pct(st.delivered),
            st.stretch_sum / st.delivered.max(1) as f64,
            if scheme.id().is_proactive() {
                "0 (precomputed)".to_string()
            } else {
                st.calcs.to_string()
            }
        );
    }
}

#[derive(Default, Clone)]
struct Stats {
    delivered: usize,
    stretch_sum: f64,
    calcs: usize,
}
