//! Multiple simultaneous failure areas (§III-E): two disasters strike at
//! once, and recovery initiators around each area independently collect
//! failure information and reroute.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_area
//! ```

use rtr::core::{recover_multi_area, Phase1Termination, RtrSession};
use rtr::routing::{shortest_path, RoutingTable};
use rtr::sim::{CaseKind, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    // A dense twin so two holes still leave plenty of alternate paths.
    let topo = isp::profile("AS3320")
        .expect("AS3320 is in Table II")
        .synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);

    // Two simultaneous failure areas in opposite corners.
    let region = Region::Union(vec![
        Region::circle((600.0, 600.0), 260.0),
        Region::circle((1450.0, 1450.0), 220.0),
    ]);
    let scenario = FailureScenario::from_region(&topo, &region);
    println!(
        "two failure areas: {} routers dead, {} links cut (of {}/{})",
        scenario.failed_node_count(),
        scenario.failed_link_count(),
        topo.node_count(),
        topo.link_count()
    );

    let net = Network::new(&topo, &scenario, &table);
    let mut stats = MultiAreaStats::default();
    let mut sessions: std::collections::BTreeMap<_, RtrSession<'_, _>> = Default::default();

    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            else {
                continue;
            };
            let session = sessions.entry(initiator).or_insert_with(|| {
                RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                    .expect("recoverable case: live initiator with a failed incident link")
            });
            assert_ne!(
                session.phase1().termination,
                Phase1Termination::StepBudgetExhausted,
                "Theorem 1 holds with multiple areas too"
            );
            stats.cases += 1;
            let attempt = session.recover(t);
            if attempt.is_delivered() {
                stats.delivered += 1;
                let optimal = shortest_path(&topo, &scenario, initiator, t)
                    .expect("recoverable")
                    .cost();
                if attempt.path.as_ref().map(rtr::routing::Path::cost) == Some(optimal) {
                    stats.optimal += 1;
                }
            }
        }
    }

    println!("\nrecoverable (source, destination) pairs: {}", stats.cases);
    println!(
        "RTR delivered {} ({:.1}%), every delivery optimal: {}",
        stats.delivered,
        100.0 * stats.delivered as f64 / stats.cases.max(1) as f64,
        stats.delivered == stats.optimal
    );
    println!(
        "{} distinct recovery initiators, each ran phase 1 exactly once",
        sessions.len()
    );

    // Show one initiator's view of the double disaster.
    if let Some((initiator, session)) = sessions.iter().next() {
        let h = &session.phase1().header;
        println!(
            "\ne.g. initiator {initiator}: walked {} hops, collected {} failed links, {} cross links",
            session.phase1().trace.hops(),
            h.failed_links().len(),
            h.cross_links().len()
        );
    }

    // §III-E extension: chain RTR sessions across areas, carrying collected
    // failure information in the packet header. Cases plain RTR discards
    // (recovery path ran into the *other* area) get rescued.
    let mut rescued = 0;
    let mut discarded = 0;
    for s in topo.node_ids() {
        for t in topo.node_ids() {
            if s == t {
                continue;
            }
            let CaseKind::Recoverable {
                initiator,
                failed_link,
            } = net.classify(s, t)
            else {
                continue;
            };
            let session = sessions.get_mut(&initiator).expect("seen above");
            if session.recover(t).is_delivered() {
                continue;
            }
            discarded += 1;
            let chained =
                recover_multi_area(&topo, &crosslinks, &scenario, initiator, failed_link, t, 32)
                    .expect("entry point is a valid initiator");
            if chained.is_delivered() {
                rescued += 1;
            }
        }
    }
    println!(
        "\nSec. III-E multi-area chaining: {rescued}/{discarded} discarded cases rescued by carrying failure info across areas"
    );
}

#[derive(Default)]
struct MultiAreaStats {
    cases: usize,
    delivered: usize,
    optimal: usize,
}
