//! Renders a paper-style diagram (like the paper's Fig. 2/6) of a failure
//! area, RTR's phase-1 collection walk around it, and the recovery path.
//!
//! Writes `rtr_scene.svg` into the current directory. Run with:
//!
//! ```text
//! cargo run --release --example visualize -- AS1239
//! ```

use rtr::core::RtrSession;
use rtr::eval::viz::SvgScene;
use rtr::routing::RoutingTable;
use rtr::sim::{CaseKind, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "AS1239".into());
    let topo = isp::profile(&name)
        .unwrap_or_else(|| {
            eprintln!("unknown topology {name}");
            std::process::exit(2);
        })
        .synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    let region = Region::circle((1000.0, 1000.0), 260.0);
    let scenario = FailureScenario::from_region(&topo, &region);

    // Find a recoverable case and run RTR.
    let net = Network::new(&topo, &scenario, &table);
    let Some((initiator, failed_link, dest)) = topo
        .node_ids()
        .flat_map(|s| topo.node_ids().map(move |t| (s, t)))
        .find_map(|(s, t)| match net.classify(s, t) {
            CaseKind::Recoverable {
                initiator,
                failed_link,
            } => Some((initiator, failed_link, t)),
            _ => None,
        })
    else {
        eprintln!("this failure broke nothing recoverable; try another topology");
        std::process::exit(1);
    };
    let mut session = RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
        .expect("recoverable case: live initiator with a failed incident link");
    let attempt = session.recover(dest);

    let mut scene = SvgScene::new(&topo).with_failure(&scenario, &region);
    scene = scene.with_walk(&session.phase1().trace);
    if let Some(path) = &attempt.path {
        scene = scene.with_path(path, "#1e8449");
    }
    let svg = scene.render();
    std::fs::write("rtr_scene.svg", &svg).expect("write rtr_scene.svg");
    println!(
        "wrote rtr_scene.svg: {name}, initiator {initiator}, destination {dest}, \
         phase-1 walk of {} hops (dotted blue), recovery path (green), delivered = {}",
        session.phase1().trace.hops(),
        attempt.is_delivered()
    );
}
