//! The loss window RTR closes: packets dropped during IGP convergence with
//! and without reactive rerouting.
//!
//! §I of the paper motivates RTR with the cost of convergence: routers keep
//! forwarding into the failure until detection + flooding + SPF + FIB
//! update complete, and "disconnection of an OC-192 link for 10 seconds can
//! lead to about 12 million packets being dropped". This example quantifies
//! that window on a Table II twin under a disaster-scale failure. Run with:
//!
//! ```text
//! cargo run --release --example convergence
//! ```

use rtr::core::RtrSession;
use rtr::routing::RoutingTable;
use rtr::sim::{packets_per_second, unprotected_loss, CaseKind, ConvergenceModel, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    let topo = isp::profile("AS209")
        .expect("AS209 is in Table II")
        .synthesize();
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);
    let scenario = FailureScenario::from_region(&topo, &Region::circle((1000.0, 900.0), 280.0));
    println!(
        "failure: {} routers dead, {} links cut",
        scenario.failed_node_count(),
        scenario.failed_link_count()
    );

    // Per-router convergence completion under two IGP tunings.
    for (label, model) in [
        ("classic IGP", ConvergenceModel::CLASSIC),
        ("tuned IGP", ConvergenceModel::TUNED),
    ] {
        let total = model
            .network_convergence_time(&topo, &scenario)
            .expect("the failure is detected");
        println!("\n{label}: network converges after {total}");

        // Every recoverable failed path bleeds packets until its recovery
        // initiator converges — unless a reactive scheme carries them.
        let net = Network::new(&topo, &scenario, &table);
        let times = model.convergence_times(&topo, &scenario);
        let pps = packets_per_second(10.0, 1000); // one OC-192-grade flow per path
        let mut unprotected = 0.0f64;
        let mut with_rtr = 0.0f64;
        let mut recoverable_paths = 0usize;
        let mut sessions: std::collections::BTreeMap<_, RtrSession<'_, _>> = Default::default();
        for s in topo.node_ids() {
            for t in topo.node_ids() {
                if s == t {
                    continue;
                }
                let CaseKind::Recoverable {
                    initiator,
                    failed_link,
                } = net.classify(s, t)
                else {
                    continue;
                };
                recoverable_paths += 1;
                let window = times[initiator.index()].expect("initiator is a live detector");
                unprotected += unprotected_loss(window, pps);
                // With RTR, the flow survives if recovery delivers; packets
                // are only delayed by the first phase, not dropped (§III-A).
                let session = sessions.entry(initiator).or_insert_with(|| {
                    RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
                        .expect("recoverable case: live initiator with a failed incident link")
                });
                if !session.recover(t).is_delivered() {
                    with_rtr += unprotected_loss(window, pps);
                }
            }
        }
        println!("  recoverable failed paths: {recoverable_paths} (one 1.25 Mpps flow each)");
        println!(
            "  packets lost without protection: {:.1} M",
            unprotected / 1e6
        );
        println!("  packets lost with RTR:           {:.1} M", with_rtr / 1e6);
        if unprotected > 0.0 {
            println!(
                "  loss avoided: {:.1}%",
                100.0 * (1.0 - with_rtr / unprotected)
            );
        }
    }
}
