//! Quickstart: recover one failed routing path with RTR.
//!
//! A circular disaster knocks out the middle of an ISP topology; a router
//! next to the hole loses its default next hop and invokes RTR. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rtr::core::RtrSession;
use rtr::routing::{shortest_path, RoutingTable};
use rtr::sim::{CaseKind, DelayModel, Network};
use rtr::topology::{isp, CrossLinkTable, FailureScenario, FullView, Region};

fn main() {
    // 1. An ISP topology: the paper's AS1239 twin (52 routers, 84 links,
    //    in a 2000 x 2000 plane).
    let topo = isp::profile("AS1239")
        .expect("AS1239 is in Table II")
        .synthesize();
    println!(
        "topology: {} routers, {} links, connected = {}",
        topo.node_count(),
        topo.link_count(),
        topo.is_connected()
    );

    // 2. Pre-failure routing state: every router's shortest-path tables,
    //    plus the cross-link table RTR's first phase needs.
    let table = RoutingTable::compute(&topo, &FullView);
    let crosslinks = CrossLinkTable::new(&topo);

    // 3. Disaster: a circular failure area of radius 250 in the middle of
    //    the plane. Routers inside die; links crossing the circle die.
    let region = Region::circle((1000.0, 1000.0), 250.0);
    let scenario = FailureScenario::from_region(&topo, &region);
    println!(
        "failure: {} routers and {} links destroyed",
        scenario.failed_node_count(),
        scenario.failed_link_count()
    );

    // 4. Find a failed routing path: walk default routes until one blocks.
    let net = Network::new(&topo, &scenario, &table);
    let (initiator, failed_link, dest) = topo
        .node_ids()
        .flat_map(|s| topo.node_ids().map(move |t| (s, t)))
        .find_map(|(s, t)| match net.classify(s, t) {
            CaseKind::Recoverable {
                initiator,
                failed_link,
            } => Some((initiator, failed_link, t)),
            _ => None,
        })
        .expect("a radius-250 hole breaks some recoverable path");
    println!("\nfailed routing path toward {dest}: router {initiator} lost its next hop over {failed_link}");

    // 5. RTR phase 1: forward a packet around the failure area, collecting
    //    failed-link ids in its header.
    let mut session = RtrSession::start(&topo, &crosslinks, &scenario, initiator, failed_link)
        .expect("recoverable case: live initiator with a failed incident link");
    let phase1 = session.phase1();
    let delay = DelayModel::PAPER;
    println!(
        "phase 1: {} hops in {} ({} failed links collected, {} cross links recorded)",
        phase1.trace.hops(),
        phase1.trace.duration(&delay),
        phase1.header.failed_links().len(),
        phase1.header.cross_links().len(),
    );

    // 6. RTR phase 2: recompute the shortest path on the repaired view and
    //    source-route the packet along it.
    let attempt = session.recover(dest);
    match &attempt.path {
        Some(path) => println!("phase 2: recovery path {path}"),
        None => println!("phase 2: destination unreachable in the initiator's view"),
    }
    assert!(attempt.is_delivered(), "this case is recoverable");

    // 7. Theorem 2: the recovery path is optimal — compare against the
    //    ground-truth shortest path (which RTR never saw).
    let optimal = shortest_path(&topo, &scenario, initiator, dest).expect("recoverable");
    let got = attempt.path.expect("delivered implies a path");
    println!(
        "\noptimality: RTR cost = {}, ground-truth optimum = {} (stretch {:.2})",
        got.cost(),
        optimal.cost(),
        got.cost() as f64 / optimal.cost() as f64
    );
    assert_eq!(
        got.cost(),
        optimal.cost(),
        "Theorem 2: stretch is exactly 1"
    );
    println!(
        "shortest-path calculations spent: {}",
        session.sp_calculations()
    );
}
