//! # RTR — Reactive Two-phase Rerouting
//!
//! Facade crate for the reproduction of *"Optimal Recovery from
//! Large-Scale Failures in IP Networks"* (Zheng, Cao, La Porta, Swami —
//! ICDCS 2012). Re-exports the workspace crates under one roof:
//!
//! * [`topology`] — network model, geometry, generators, failure areas;
//! * [`routing`] — Dijkstra, incremental SPT, routing tables, source routes;
//! * [`sim`] — packet headers, delay model, traces, the network under failure;
//! * [`obs`] — trace events, sinks, and the metrics registry;
//! * [`core`] — the RTR protocol itself (phase 1 + phase 2);
//! * [`baselines`] — the FCP and MRC comparators;
//! * [`eval`] — the experiment harness regenerating every table and figure;
//! * [`serve`] — the concurrent recovery service and its load harness.
//!
//! See `examples/quickstart.rs` for a guided tour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtr_baselines as baselines;
pub use rtr_core as core;
pub use rtr_eval as eval;
pub use rtr_obs as obs;
pub use rtr_routing as routing;
pub use rtr_serve as serve;
pub use rtr_sim as sim;
pub use rtr_topology as topology;
