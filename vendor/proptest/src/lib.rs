//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range and tuple strategies, [`Strategy::prop_map`], `collection::vec`,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics match upstream with one deliberate simplification: failing
//! inputs are reported (with the case number and every bound value) but not
//! *shrunk*. Case generation is deterministic per test name, so a reported
//! failure always reproduces.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic generator driving one test's cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator whose stream is fixed by the test's name, so every run
    /// of the suite generates the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                    let values = [$((stringify!($arg), format!("{:?}", $arg)),)*]
                        .iter()
                        .map(|(n, v)| format!("{n} = {v}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case} [{values}]: {msg}")
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case when the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_bound_samples(a in 3..10usize, b in 0.0..1.0f64) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn tuples_and_maps_compose(p in (0..5u32, 0..5u32).prop_map(|(x, y)| x + y)) {
            prop_assert!(p <= 8);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips_cases(n in 0..100u32) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_case_and_values() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(n in 0..10u32) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
