//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the *exact* API surface the workspace uses — seeded
//! construction ([`SeedableRng::seed_from_u64`]) and uniform range sampling
//! ([`Rng::gen_range`]) — backed by xoshiro256++ seeded through splitmix64.
//!
//! The generator is deterministic and of good statistical quality, but its
//! output stream is **not** bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12). Nothing in the workspace depends on the exact stream, only
//! on seeded reproducibility within a build.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty (matching upstream `rand`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeded construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws a single uniform sample using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// splitmix64: expands a 64-bit seed into well-mixed stream of seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} far from uniform");
        }
    }
}
