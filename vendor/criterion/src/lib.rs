//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API surface the RTR benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timing loop.
//!
//! It reports mean iteration time to stdout. It does not do statistical
//! outlier analysis, warm-up calibration, or HTML reports; it exists so the
//! benches compile, run, and print comparable numbers offline.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (matching criterion's default
/// measurement time of 5s would make offline smoke runs slow; 500ms keeps
/// `cargo bench` usable while still averaging many iterations).
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(500);

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement budget is spent,
    /// recording the total time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed pass absorbs cold caches and lazy statics.
        let _ = routine();
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            let _ = routine();
            iterations += 1;
            if start.elapsed() >= MEASUREMENT_BUDGET {
                break;
            }
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iterations == 0 {
            println!("{label:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iterations);
        println!(
            "{label:<50} {:>12} ns/iter ({} iterations)",
            per_iter, self.iterations
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Prevents the compiler from optimising a value away, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring
/// criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1 + 1));
        assert!(b.iterations > 0);
        assert!(b.elapsed >= MEASUREMENT_BUDGET);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("build", "AS1239").to_string(),
            "build/AS1239"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
